(* esservd load harness: drive Es_serve.Server in-process with a
   seeded trace of solve requests at controlled duplicate ratios, and
   measure what the serving PR promises:

     - cached answers are cheap: p50 exact-hit latency at least 10x
       below p50 cold-solve latency (the --gate assertion);
     - rescale-hits are sound: every rescale-hit is re-solved
       (--selfcheck 1 equivalent) and must agree — zero disagreements;
     - parallelism is invisible: the response stream is byte-identical
       at --jobs 1 and --jobs 4 on the same trace.

   Writes BENCH_PR9.json under the esched-bench/2 conventions: a
   multi-job throughput point taken on fewer cores than jobs is
   recorded with ["valid": false] and a ["skipped_reason"], never as a
   scaling data point.

     dune exec bench/serve/main.exe                  # BENCH_PR9.json
     dune exec bench/serve/main.exe -- --out o.json  # change the path
     dune exec bench/serve/main.exe -- --gate        # assert the above *)

module Gen = Es_check.Gen
module Server = Es_serve.Server
module Rng = Es_util.Rng
module Stats = Es_util.Stats
module Json = Es_obs.Obs_json

let jobs_grid = [ 1; 2; 4 ]
let n_unique = 16
let n_dup = 32
let n_scaled = 16
let batch = 16
let gate_hit_speedup = 10.

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

(* Request lines are built through Obs_json so the trace is valid wire
   input by construction.  Only CONTINUOUS instances: the scaled
   variants exercise the rescale path, which exists for that model. *)
let line_of ~id ~scale_w ~scale_d (inst : Gen.inst) =
  let open Json in
  let nums xs = List (Array.to_list (Array.map (fun x -> Num x) xs)) in
  Json.to_compact_string
    (Obj
       [
         ("id", Num (float_of_int id));
         ("tasks", nums (Array.map (fun w -> w *. scale_w) inst.Gen.weights));
         ( "edges",
           List
             (List.map
                (fun (a, b) ->
                  List [ Num (float_of_int a); Num (float_of_int b) ])
                inst.Gen.edges) );
         ("procs", Num (float_of_int inst.Gen.procs));
         ( "model",
           Obj
             [
               ("kind", Str "continuous");
               ("fmin", Num (Gen.fmin inst));
               ("fmax", Num (Gen.fmax inst));
             ] );
         ("deadline", Num (Gen.deadline inst *. scale_d));
       ])

(* Feasible instances only: the latency comparison wants real solves,
   not early infeasibility exits. *)
let draw_instances () =
  let rng = Rng.create ~seed:97 in
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      let inst = Gen.generate rng in
      if inst.Gen.slack >= 1.15 then go (inst :: acc) (k - 1) else go acc k
  in
  go [] n_unique

let build_trace () =
  let insts = Array.of_list (draw_instances ()) in
  let uniques =
    List.init n_unique (fun i -> line_of ~id:i ~scale_w:1. ~scale_d:1. insts.(i))
  in
  let rng = Rng.create ~seed:98 in
  (* duplicates re-send the original line byte-for-byte (same id), so
     they exercise the verbatim front table — the cheapest hit path *)
  let dups =
    List.init n_dup (fun _ ->
        let i = Rng.int rng n_unique in
        line_of ~id:i ~scale_w:1. ~scale_d:1. insts.(i))
  in
  let scaled =
    List.init n_scaled (fun k ->
        let i = Rng.int rng n_unique in
        line_of ~id:(2000 + k) ~scale_w:2. ~scale_d:1.25 insts.(i))
  in
  (uniques, dups @ scaled)

(* ------------------------------------------------------------------ *)
(* driving the server                                                  *)
(* ------------------------------------------------------------------ *)

let rec batches n = function
  | [] -> []
  | lines ->
    let rec split k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | l :: rest -> split (k - 1) (l :: acc) rest
    in
    let head, rest = split n [] lines in
    head :: batches n rest

let run_trace ~jobs trace =
  let config =
    {
      Server.default_config with
      Server.jobs = jobs;
      Server.batch = batch;
      Server.queue = batch;
      Server.selfcheck = 1;
    }
  in
  let srv = Server.create config in
  let wall, responses =
    Bench_common.wall (fun () ->
        Bench_common.with_jobs jobs (fun pool ->
            List.concat_map (Server.process_batch srv ~pool) (batches batch trace)))
  in
  (wall, responses, Server.samples srv)

let quantiles samples tag =
  let xs =
    Array.of_list
      (List.filter_map
         (fun (t, w) -> if String.equal t tag then Some w else None)
         samples)
  in
  if Array.length xs = 0 then None
  else Some (Array.length xs, Stats.quantile xs 0.5, Stats.quantile xs 0.99)

let count_substring responses needle =
  List.length
    (List.filter
       (fun r ->
         let rec find i =
           i + String.length needle <= String.length r
           && (String.equal (String.sub r i (String.length needle)) needle
              || find (i + 1))
         in
         find 0)
       responses)

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let gate = List.mem "--gate" argv in
  let path = Bench_common.out_path ~default:"BENCH_PR9.json" argv in
  let cores = (Domain.recommended_domain_count () [@lint.allow "P004"]) in
  let uniques, rest = build_trace () in
  let trace = uniques @ rest in
  let runs = List.map (fun jobs -> (jobs, run_trace ~jobs trace)) jobs_grid in
  let _, (_, reference, samples) =
    match runs with r :: _ -> r | [] -> failwith "empty jobs grid"
  in
  (* determinism: byte-identical response stream at every job count *)
  let divergent =
    List.filter_map
      (fun (jobs, (_, responses, _)) ->
        if List.equal String.equal responses reference then None else Some jobs)
      runs
  in
  List.iter
    (fun jobs ->
      Printf.eprintf "bench/serve: responses differ at --jobs %d\n" jobs)
    divergent;
  if divergent <> [] then exit 1;
  let hits = count_substring reference "\"cache\":\"hit\"" in
  let rescale_hits = count_substring reference "\"cache\":\"rescale-hit\"" in
  let misses = count_substring reference "\"cache\":\"miss\"" in
  let sc_fail = count_substring reference "\"self_check\":\"fail\"" in
  let sc_ok = count_substring reference "\"self_check\":\"ok\"" in
  let lat tag =
    match quantiles samples tag with
    | Some (n, p50, p99) ->
      Json.Obj
        [
          ("n", Json.Num (float_of_int n));
          ("p50_s", Json.Num p50);
          ("p99_s", Json.Num p99);
        ]
    | None -> Json.Null
  in
  let hit_speedup =
    match (quantiles samples "miss", quantiles samples "hit") with
    | Some (_, p50_miss, _), Some (_, p50_hit, _) when p50_hit > 0. ->
      Some (p50_miss /. p50_hit)
    | _ -> None
  in
  let point (jobs, (wall, responses, _)) =
    let valid = jobs <= cores in
    Json.Obj
      ([
         ("jobs", Json.Num (float_of_int jobs));
         ("wall_s", Json.Num wall);
         ( "throughput_rps",
           Json.Num (float_of_int (List.length responses) /. wall) );
         ("valid", Json.Bool valid);
       ]
      @
      if valid then []
      else
        [
          ( "skipped_reason",
            Json.Str (Printf.sprintf "cores=%d < jobs=%d" cores jobs) );
        ])
  in
  let gate_failures =
    if not gate then []
    else
      List.concat
        [
          (match hit_speedup with
          | Some s when s >= gate_hit_speedup -> []
          | Some s ->
            [ Printf.sprintf "hit speedup %.1fx < required %.1fx" s gate_hit_speedup ]
          | None -> [ "no hit/miss latency samples" ]);
          (if sc_fail = 0 then []
           else [ Printf.sprintf "%d self-check disagreement(s)" sc_fail ]);
          (if rescale_hits > 0 then []
           else [ "no rescale-hit was exercised" ]);
        ]
  in
  let json =
    Json.Obj
      [
        ("schema", Json.Str "esched-bench/2");
        ("baseline", Json.Str "PR9");
        ("cores", Json.Num (float_of_int cores));
        ("requests", Json.Num (float_of_int (List.length trace)));
        ( "trace",
          Json.Obj
            [
              ("unique", Json.Num (float_of_int n_unique));
              ("duplicate", Json.Num (float_of_int n_dup));
              ("scaled", Json.Num (float_of_int n_scaled));
              ("batch", Json.Num (float_of_int batch));
            ] );
        ( "cache",
          Json.Obj
            [
              ("miss", Json.Num (float_of_int misses));
              ("hit", Json.Num (float_of_int hits));
              ("rescale_hit", Json.Num (float_of_int rescale_hits));
              ("selfcheck_ok", Json.Num (float_of_int sc_ok));
              ("selfcheck_fail", Json.Num (float_of_int sc_fail));
            ] );
        ( "latency",
          Json.Obj
            [
              ("miss", lat "miss");
              ("hit", lat "hit");
              ("rescale_hit", lat "rescale-hit");
            ] );
        ( "hit_speedup_p50",
          match hit_speedup with Some s -> Json.Num s | None -> Json.Null );
        ("deterministic_across_jobs", Json.Bool true);
        ( "gate",
          Json.Obj
            [
              ("requested", Json.Bool gate);
              ("threshold_hit_speedup", Json.Num gate_hit_speedup);
              ("passed", Json.Bool (gate_failures = []));
            ] );
        ("points", Json.List (List.map point runs));
      ]
  in
  Bench_common.write_json ~path json;
  Printf.printf "bench/serve: wrote %s (%d requests, %d cores)\n" path
    (List.length trace) cores;
  Printf.printf "  cache: %d miss, %d hit, %d rescale-hit (self-check %d ok / %d fail)\n"
    misses hits rescale_hits sc_ok sc_fail;
  (match hit_speedup with
  | Some s -> Printf.printf "  hit p50 speedup over cold solve: %.1fx\n" s
  | None -> Printf.printf "  hit p50 speedup: n/a\n");
  List.iter
    (fun (jobs, (wall, responses, _)) ->
      Printf.printf "  jobs=%d  %8.1f ms  %7.0f req/s%s\n" jobs (wall *. 1e3)
        (float_of_int (List.length responses) /. wall)
        (if jobs <= cores then "" else "  (not a scaling point)"))
    runs;
  if gate then begin
    if gate_failures = [] then
      Printf.printf "  gate: passed (hit >= %.0fx, zero self-check failures, \
                     byte-identical across jobs)\n"
        gate_hit_speedup
    else begin
      List.iter
        (fun msg -> Printf.eprintf "bench/serve: GATE FAILURE %s\n" msg)
        gate_failures;
      exit 1
    end
  end
