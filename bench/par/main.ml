(* lib/par scaling benchmark: the deterministic parallel workloads
   (Pareto sweeps, Monte-Carlo fault injection) at jobs ∈ {1, 2, 4},
   plus an estimate of the Obs disabled-path overhead on a probed
   solver workload.  Writes a machine-readable baseline:

     dune exec bench/par/main.exe                    # BENCH_PR6.json
     dune exec bench/par/main.exe -- --out o.json    # change the path
     dune exec bench/par/main.exe -- --gate          # assert speedups

   Honesty about cores (schema esched-bench/2): a multi-job point is
   only a *timing* when the machine actually has that many cores.  On
   an undersized host (e.g. the 1-core reference container) the point
   is still executed once — the digest equality check across job
   counts is the determinism contract and always applies — but it is
   recorded with ["valid": false] and a ["skipped_reason"] instead of
   a speedup, so a recorded 0.28x "slowdown" can never again be read
   as an engine regression when it was only oversubscription.

   [--gate] turns the baseline into a regression gate: on a >= 4-core
   machine the Pareto-front and Monte-Carlo workloads must reach a
   speedup >= 1.5x at jobs=4, or the run exits 1 (after writing the
   JSON, so CI still uploads the evidence).  On fewer cores the gate
   records itself as not applied and passes. *)

module Obs = Es_obs.Obs
module Pool = Es_par.Pool
module Rng = Es_util.Rng

let jobs_grid = [ 1; 2; 4 ]
let reps = 3
let gate_threshold = 1.5
let gate_jobs = 4
let gate_min_cores = 4

(* The workloads the CI gate asserts scaling on (ISSUE 6: at least the
   Pareto front and Monte-Carlo). *)
let gated_workloads =
  [ "pareto-bicrit-front-24-deadlines"; "sim-monte-carlo-20k-trials" ]

(* ------------------------------------------------------------------ *)
(* fixed instances                                                     *)
(* ------------------------------------------------------------------ *)

let fmin = 0.2
let fmax = 1.0
let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 ()

let mapping, base_deadline =
  let rng = Rng.create ~seed:11 in
  let dag =
    Generators.random_layered rng ~layers:5 ~width:4 ~density:0.5 ~wlo:1. ~whi:3.
  in
  let m = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
  (m, List_sched.makespan_at_speed m ~f:fmax)

let deadlines =
  List.init 24 (fun i -> base_deadline *. (1.05 +. (0.08 *. float_of_int i)))

let sim_schedule =
  let rng = Rng.create ~seed:12 in
  let dag = Generators.chain rng ~n:12 ~wlo:0.5 ~whi:3. in
  let m = Mapping.single_processor dag in
  Schedule.of_speeds m ~speeds:(Array.make (Dag.n dag) 0.6)

(* Each workload returns a digest of its result so the harness can
   assert jobs-independence, not just time it. *)
let digest_front points =
  String.concat ";"
    (List.map
       (fun (p : Pareto.point) ->
         Printf.sprintf "%.9f:%.9f:%d" p.Pareto.deadline p.Pareto.energy
           p.Pareto.n_reexecuted)
       points)

let workloads : (string * (Pool.t option -> string)) list =
  [
    ( "pareto-bicrit-front-24-deadlines",
      fun pool ->
        digest_front (Pareto.bicrit_front ?pool ~fmin ~fmax ~deadlines mapping) );
    ( "pareto-tricrit-front-24-deadlines",
      fun pool -> digest_front (Pareto.tricrit_front ?pool ~rel ~deadlines mapping) );
    ( "sim-monte-carlo-20k-trials",
      fun pool ->
        let r =
          Sim.monte_carlo_par ?pool (Rng.create ~seed:13) ~rel ~trials:20_000
            sim_schedule
        in
        Printf.sprintf "%.9f:%.9f:%.9f" r.Sim.success_rate r.Sim.mean_faults
          r.Sim.mean_realised_energy );
  ]

(* ------------------------------------------------------------------ *)
(* timing                                                              *)
(* ------------------------------------------------------------------ *)

let wall = Bench_common.wall
let best_wall f = Bench_common.best_wall ~reps f
let with_jobs = Bench_common.with_jobs

type point = {
  p_jobs : int;
  p_wall : float;
  p_valid : bool;  (* false: timing taken on fewer cores than jobs *)
  p_skipped_reason : string option;
}

let bench_workload ~cores (name, run) =
  let reference = run None in
  let check_digest jobs digest =
    if digest <> reference then begin
      Printf.eprintf "bench/par: %s differs at --jobs %d\n" name jobs;
      exit 1
    end
  in
  let points =
    List.map
      (fun jobs ->
        if jobs <= cores then begin
          let t, digest =
            with_jobs jobs (fun pool -> best_wall (fun () -> run pool))
          in
          check_digest jobs digest;
          { p_jobs = jobs; p_wall = t; p_valid = true; p_skipped_reason = None }
        end
        else begin
          (* determinism is still asserted (one run), the timing is
             not a scaling data point on this machine *)
          let t, digest = with_jobs jobs (fun pool -> wall (fun () -> run pool)) in
          check_digest jobs digest;
          {
            p_jobs = jobs;
            p_wall = t;
            p_valid = false;
            p_skipped_reason =
              Some (Printf.sprintf "cores=%d < jobs=%d" cores jobs);
          }
        end)
      jobs_grid
  in
  let t1 =
    match List.find_opt (fun p -> p.p_jobs = 1) points with
    | Some p -> p.p_wall
    | None -> nan
  in
  (name, points, t1)

let speedup ~t1 p = t1 /. p.p_wall

(* ------------------------------------------------------------------ *)
(* Obs disabled-path overhead                                          *)
(* ------------------------------------------------------------------ *)

(* The telemetry contract (DESIGN.md §9, lib/obs) is that a disabled
   probe costs one load-test-branch.  Estimate that cost directly
   (tight incr loop against an empty-loop baseline), count how many
   probes one solver workload actually hits (run it once enabled),
   and express the product as a fraction of the disabled wall time. *)
let obs_overhead () =
  let c = Obs.counter "bench.par.disabled" in
  Obs.disable ();
  let iters = 20_000_000 in
  let t_loop, () = wall (fun () -> for _ = 1 to iters do Sys.opaque_identity () done) in
  let t_incr, () =
    wall (fun () -> for _ = 1 to iters do Obs.incr (Sys.opaque_identity c) done)
  in
  let incr_ns = Float.max 0. (t_incr -. t_loop) /. float_of_int iters *. 1e9 in
  let run =
    match List.nth_opt workloads 1 with
    | Some (_, run) -> run
    | None -> fun _ -> ""
  in
  Obs.enable ();
  let snap =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () ->
        Obs.reset ();
        ignore (run None);
        Obs.snapshot ())
  in
  let probes =
    List.fold_left (fun acc (_, v) -> acc + v) 0 snap.Obs.counters
    + List.fold_left (fun acc (_, t) -> acc + t.Obs.count) 0 snap.Obs.timers
  in
  let t_dis, _ = wall (fun () -> run None) in
  let fraction = float_of_int probes *. incr_ns *. 1e-9 /. t_dis in
  (incr_ns, probes, t_dis, fraction)

(* ------------------------------------------------------------------ *)
(* gate                                                                *)
(* ------------------------------------------------------------------ *)

(* Returns the failures: (workload, measured speedup at [gate_jobs]). *)
let gate_failures results =
  List.filter_map
    (fun (name, points, t1) ->
      if not (List.mem name gated_workloads) then None
      else
        match List.find_opt (fun p -> p.p_jobs = gate_jobs && p.p_valid) points with
        | None -> Some (name, nan) (* no valid jobs=4 point: fail loudly *)
        | Some p ->
          let s = speedup ~t1 p in
          if s >= gate_threshold then None else Some (name, s))
    results

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let gate = List.mem "--gate" argv in
  let path = Bench_common.out_path ~default:"BENCH_PR6.json" argv in
  (* sizing query only — no domain is spawned here; the pool owns the workers *)
  let cores = (Domain.recommended_domain_count () [@lint.allow "P004"]) in
  let results = List.map (bench_workload ~cores) workloads in
  let incr_ns, probes, t_dis, fraction = obs_overhead () in
  let gate_applied = gate && cores >= gate_min_cores in
  let failures = if gate_applied then gate_failures results else [] in
  let open Es_obs.Obs_json in
  let point_json t1 p =
    Obj
      ([
         ("jobs", Num (float_of_int p.p_jobs));
         ("wall_s", Num p.p_wall);
         ("valid", Bool p.p_valid);
       ]
      @ (if p.p_valid then [ ("speedup_vs_jobs1", Num (speedup ~t1 p)) ] else [])
      @
      match p.p_skipped_reason with
      | Some reason -> [ ("skipped_reason", Str reason) ]
      | None -> [])
  in
  let workload_json (name, points, t1) =
    Obj
      [
        ("name", Str name);
        ("deterministic", Bool true);
        ("gated", Bool (List.mem name gated_workloads));
        ("jobs", List (List.map (point_json t1) points));
      ]
  in
  let json =
    Obj
      [
        ("schema", Str "esched-bench/2");
        ("baseline", Str "PR6");
        ("cores", Num (float_of_int cores));
        ("reps_per_point", Num (float_of_int reps));
        ( "gate",
          Obj
            [
              ("requested", Bool gate);
              ("applied", Bool gate_applied);
              ("threshold_speedup", Num gate_threshold);
              ("at_jobs", Num (float_of_int gate_jobs));
              ("min_cores", Num (float_of_int gate_min_cores));
              ("passed", Bool (failures = []));
            ] );
        ("workloads", List (List.map workload_json results));
        ( "obs_disabled_path",
          Obj
            [
              ("incr_ns", Num incr_ns);
              ("probe_calls", Num (float_of_int probes));
              ("workload_wall_s", Num t_dis);
              ("overhead_fraction", Num fraction);
            ] );
      ]
  in
  Bench_common.write_json ~path json;
  Printf.printf "bench/par: wrote %s (%d workloads, %d cores)\n" path
    (List.length results) cores;
  List.iter
    (fun (name, points, t1) ->
      List.iter
        (fun p ->
          match p.p_skipped_reason with
          | Some reason ->
            Printf.printf "  %-36s jobs=%d  %8.1f ms  (skipped: %s)\n" name
              p.p_jobs (p.p_wall *. 1e3) reason
          | None ->
            Printf.printf "  %-36s jobs=%d  %8.1f ms  (x%.2f)\n" name p.p_jobs
              (p.p_wall *. 1e3) (speedup ~t1 p))
        points)
    results;
  Printf.printf "  obs disabled-path: %.2f ns/probe, %d probes, %.2f%% of wall\n"
    incr_ns probes (100. *. fraction);
  if gate then begin
    if not gate_applied then
      Printf.printf
        "  gate: not applied (cores=%d < %d); determinism checked, scaling \
         unasserted\n"
        cores gate_min_cores
    else if failures = [] then
      Printf.printf "  gate: passed (speedup >= %.1fx at jobs=%d on %d cores)\n"
        gate_threshold gate_jobs cores
    else begin
      List.iter
        (fun (name, s) ->
          Printf.eprintf
            "bench/par: GATE FAILURE %s: speedup %.2fx at jobs=%d < required \
             %.1fx (cores=%d)\n"
            name s gate_jobs gate_threshold cores)
        failures;
      exit 1
    end
  end
