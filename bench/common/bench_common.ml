module Pool = Es_par.Pool

let wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (Unix.gettimeofday () -. t0, v)

let best_wall ~reps f =
  let t0, v0 = wall f in
  let rec go best k =
    if k <= 0 then best
    else
      let t, _ = wall f in
      go (Float.min best t) (k - 1)
  in
  (go t0 (reps - 1), v0)

let with_jobs jobs f =
  if jobs <= 1 then f None
  else Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

let out_path ~default argv =
  let rec go = function
    | [ "--out" ] ->
      prerr_endline "bench: --out requires a path";
      exit 2
    | "--out" :: path :: _ -> path
    | _ :: rest -> go rest
    | [] -> default
  in
  go argv

let write_json ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Es_obs.Obs_json.to_string json);
      output_char oc '\n')
