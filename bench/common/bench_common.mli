(** Scaffolding shared by the bench executables: wall-clock timing,
    best-of-N repetition, the [--out] argv convention and the
    write-JSON-then-newline output step (always under [Fun.protect] so
    the channel closes on the error path too). *)

val wall : (unit -> 'a) -> (float[@units "time"]) * 'a
(** Wall-clock seconds spent in the thunk, plus its result. *)

val best_wall : reps:int -> (unit -> 'a) -> (float[@units "time"]) * 'a
(** Best (minimum) wall over [max 1 reps] runs — the least-noise
    estimator for a deterministic workload on a shared machine — with
    the first run's result. *)

val with_jobs : int -> (Es_par.Pool.t option -> 'a) -> 'a
(** Run the continuation with a fresh [jobs]-domain pool ([None] when
    [jobs <= 1]); {!Es_par.Pool.with_pool} owns the shutdown on both
    the normal and the exceptional path. *)

val out_path : default:string -> string list -> string
(** Extract [--out PATH] from an argv list; [default] when absent.
    Prints a usage error and exits 2 on a dangling [--out]. *)

val write_json : path:string -> Es_obs.Obs_json.t -> unit
(** Write the value and a trailing newline to [path].

    @raise Sys_error when the file cannot be opened or written. *)
