type t = float array array

let make r c x = Array.init r (fun _ -> Array.make c x)
let init r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))
let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let copy a = Array.map Array.copy a

let dims a =
  let r = Array.length a in
  (r, if r = 0 then 0 else Array.length a.(0))

let transpose a =
  let r, c = dims a in
  init c r (fun i j -> a.(j).(i))

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  assert (ca = rb);
  let out = make ra cb 0. in
  for i = 0 to ra - 1 do
    let ai = a.(i) and oi = out.(i) in
    for k = 0 to ca - 1 do
      let aik = ai.(k) in
      if aik <> 0. then begin
        let bk = b.(k) in
        for j = 0 to cb - 1 do
          oi.(j) <- oi.(j) +. (aik *. bk.(j))
        done
      end
    done
  done;
  out

let mulv a x =
  let r, c = dims a in
  assert (c = Array.length x);
  Array.init r (fun i ->
      let ai = a.(i) in
      let acc = ref 0. in
      for j = 0 to c - 1 do
        acc := !acc +. (ai.(j) *. x.(j))
      done;
      !acc)

let mulv_t a x =
  let r, c = dims a in
  assert (r = Array.length x);
  let out = Array.make c 0. in
  for i = 0 to r - 1 do
    let xi = x.(i) in
    if xi <> 0. then begin
      let ai = a.(i) in
      for j = 0 to c - 1 do
        out.(j) <- out.(j) +. (xi *. ai.(j))
      done
    end
  done;
  out

let add a b =
  let ra, ca = dims a and rb, cb = dims b in
  assert (ra = rb && ca = cb);
  init ra ca (fun i j -> a.(i).(j) +. b.(i).(j))

let scale s a = Array.map (Array.map (fun v -> s *. v)) a

exception Not_positive_definite
exception Singular

let cholesky a =
  let n, m = dims a in
  assert (n = m);
  let l = make n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref a.(i).(j) in
      for k = 0 to j - 1 do
        acc := !acc -. (l.(i).(k) *. l.(j).(k))
      done;
      if i = j then begin
        if !acc <= 0. then raise Not_positive_definite;
        l.(i).(j) <- sqrt !acc
      end
      else l.(i).(j) <- !acc /. l.(j).(j)
    done
  done;
  l

let solve_cholesky l b =
  let n = Array.length l in
  assert (n = Array.length b);
  (* forward: l y = b *)
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (l.(i).(k) *. y.(k))
    done;
    y.(i) <- !acc /. l.(i).(i)
  done;
  (* backward: lᵀ x = y *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (l.(k).(i) *. x.(k))
    done;
    x.(i) <- !acc /. l.(i).(i)
  done;
  x

let lu a =
  let n, m = dims a in
  assert (n = m);
  let lu = copy a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* partial pivoting *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.(i).(k) > Float.abs lu.(!pivot).(k) then pivot := i
    done;
    if Float.abs lu.(!pivot).(k) < 1e-300 then raise Singular;
    if !pivot <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tp
    end;
    let pk = lu.(k).(k) in
    for i = k + 1 to n - 1 do
      let factor = lu.(i).(k) /. pk in
      lu.(i).(k) <- factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          lu.(i).(j) <- lu.(i).(j) -. (factor *. lu.(k).(j))
        done
    done
  done;
  (lu, perm)

let lu_solve (lu, perm) b =
  let n = Array.length lu in
  assert (n = Array.length b);
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(perm.(i)) in
    for k = 0 to i - 1 do
      acc := !acc -. (lu.(i).(k) *. y.(k))
    done;
    y.(i) <- !acc
  done;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (lu.(i).(k) *. x.(k))
    done;
    x.(i) <- !acc /. lu.(i).(i)
  done;
  x

let solve a b = lu_solve (lu a) b

let solve_spd a b =
  match cholesky a with
  | l -> solve_cholesky l b
  | exception Not_positive_definite -> solve a b
