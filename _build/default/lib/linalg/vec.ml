type t = float array

let make n x = Array.make n x
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_dims x y = assert (Array.length x = Array.length y)

let add x y =
  check_dims x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dims x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_dims x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let dot x y =
  check_dims x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)
let norm_inf x = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0. x

let map2 f x y =
  check_dims x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let max_elt x = Array.fold_left Float.max x.(0) x
let min_elt x = Array.fold_left Float.min x.(0) x
