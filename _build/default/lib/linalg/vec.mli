(** Dense float vectors.

    Thin wrappers over [float array] providing the handful of BLAS-1
    operations needed by the simplex and barrier solvers.  All
    operations allocate a fresh result unless suffixed with
    [_inplace]. *)

type t = float array

val make : int -> float -> t
(** [make n x] is the length-[n] vector filled with [x]. *)

val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
(** Pointwise sum.  Dimensions must agree. *)

val sub : t -> t -> t
(** Pointwise difference. *)

val scale : float -> t -> t
(** [scale a x] is [a * x]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float
(** Inner product. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max-norm. *)

val map2 : (float -> float -> float) -> t -> t -> t
val max_elt : t -> float
val min_elt : t -> float
