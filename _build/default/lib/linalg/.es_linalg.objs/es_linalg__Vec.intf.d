lib/linalg/vec.mli:
