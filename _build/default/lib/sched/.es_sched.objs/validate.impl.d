lib/sched/validate.ml: Array Dag Float List Printf Rel Schedule Speed
