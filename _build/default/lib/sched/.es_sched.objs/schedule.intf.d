lib/sched/schedule.mli: Dag Format Mapping
