lib/sched/schedule.ml: Array Dag Es_util Format List Mapping Printf String
