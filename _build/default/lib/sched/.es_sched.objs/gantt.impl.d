lib/sched/gantt.ml: Array Buffer Bytes Char Float List Mapping Printf Schedule String
