lib/sched/list_sched.ml: Array Dag Float Fun List Mapping
