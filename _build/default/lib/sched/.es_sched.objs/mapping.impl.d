lib/sched/mapping.ml: Array Dag Es_util Format List Printf String
