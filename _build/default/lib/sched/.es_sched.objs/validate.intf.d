lib/sched/validate.mli: Dag Rel Schedule Speed
