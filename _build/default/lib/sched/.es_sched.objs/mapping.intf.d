lib/sched/mapping.mli: Dag Format
