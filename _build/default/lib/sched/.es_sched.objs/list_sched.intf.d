lib/sched/list_sched.mli: Dag Mapping
