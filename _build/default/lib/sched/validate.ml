type violation =
  | Inadmissible_speed of { task : Dag.task; speed : float }
  | Speed_change_forbidden of { task : Dag.task }
  | Deadline_exceeded of { makespan : float; deadline : float }
  | Reliability_violated of { task : Dag.task; failure : float; target : float }

let check ?deadline ?rel ~model sched =
  let dag = Schedule.dag sched in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  for i = 0 to Dag.n dag - 1 do
    let execs = Schedule.executions sched i in
    List.iter
      (fun e ->
        (match model with
        | Speed.Discrete _ | Speed.Incremental _ ->
          if List.length e > 1 then add (Speed_change_forbidden { task = i })
        | Speed.Continuous _ | Speed.Vdd_hopping _ -> ());
        List.iter
          (fun (p : Schedule.part) ->
            let ok =
              match model with
              | Speed.Vdd_hopping levels ->
                (* each part must sit exactly on a level *)
                Array.exists (fun g -> Float.abs (g -. p.speed) <= 1e-6) levels
              | m -> Speed.admissible ~tol:1e-6 m p.speed
            in
            if not ok then add (Inadmissible_speed { task = i; speed = p.speed }))
          e)
      execs;
    match rel with
    | None -> ()
    | Some params ->
      let w = Dag.weight dag i in
      let target = Rel.target_failure params ~w in
      let failure_of e =
        Rel.vdd_failure params
          ~parts:(List.map (fun (p : Schedule.part) -> (p.speed, p.time)) e)
      in
      let failure =
        match execs with
        | [ e ] -> failure_of e
        | [ e1; e2 ] -> failure_of e1 *. failure_of e2
        | _ -> assert false (* Schedule.make enforces 1 or 2 *)
      in
      (* small tolerance: heuristics sit exactly on the constraint *)
      if failure > target *. (1. +. 1e-6) +. 1e-15 then
        add (Reliability_violated { task = i; failure; target })
  done;
  (match deadline with
  | None -> ()
  | Some d ->
    let ms = Schedule.makespan sched in
    if ms > d *. (1. +. 1e-6) +. 1e-12 then
      add (Deadline_exceeded { makespan = ms; deadline = d }));
  List.rev !violations

let is_feasible ?deadline ?rel ~model sched = check ?deadline ?rel ~model sched = []

let explain dag = function
  | Inadmissible_speed { task; speed } ->
    Printf.sprintf "task %s runs at inadmissible speed %g" (Dag.label dag task) speed
  | Speed_change_forbidden { task } ->
    Printf.sprintf "task %s changes speed mid-execution under a discrete model"
      (Dag.label dag task)
  | Deadline_exceeded { makespan; deadline } ->
    Printf.sprintf "makespan %g exceeds deadline %g" makespan deadline
  | Reliability_violated { task; failure; target } ->
    Printf.sprintf "task %s failure probability %g above target %g"
      (Dag.label dag task) failure target
