type priority =
  | Bottom_level
  | Top_level
  | Heaviest_first
  | Lightest_first
  | Max_out_degree

let bottom_levels dag =
  let order = Dag.topological_order dag in
  let bl = Array.make (Dag.n dag) 0. in
  for k = Dag.n dag - 1 downto 0 do
    let i = order.(k) in
    let below = List.fold_left (fun acc s -> Float.max acc bl.(s)) 0. (Dag.succs dag i) in
    bl.(i) <- Dag.weight dag i +. below
  done;
  bl

let top_levels dag =
  let order = Dag.topological_order dag in
  let tl = Array.make (Dag.n dag) 0. in
  Array.iter
    (fun i ->
      let above =
        List.fold_left
          (fun acc p -> Float.max acc (tl.(p) +. Dag.weight dag p))
          0. (Dag.preds dag i)
      in
      tl.(i) <- above)
    order;
  tl

let rank dag priority =
  match priority with
  | Bottom_level -> bottom_levels dag
  | Top_level -> top_levels dag
  | Heaviest_first -> Array.init (Dag.n dag) (Dag.weight dag)
  | Lightest_first -> Array.init (Dag.n dag) (fun i -> -.Dag.weight dag i)
  | Max_out_degree ->
    Array.init (Dag.n dag) (fun i -> float_of_int (List.length (Dag.succs dag i)))

let schedule dag ~p ~priority =
  assert (p >= 1);
  let n = Dag.n dag in
  let prio = rank dag priority in
  let indeg = Array.init n (fun i -> List.length (Dag.preds dag i)) in
  let finish = Array.make n 0. in
  let proc_free = Array.make p 0. in
  let order = Array.make p [] in
  let ready = ref (List.filter (fun i -> indeg.(i) = 0) (List.init n Fun.id)) in
  let pick () =
    (* highest priority; ties to the smallest id *)
    let best =
      List.fold_left
        (fun acc i ->
          match acc with
          | None -> Some i
          | Some j -> if prio.(i) > prio.(j) then Some i else Some j)
        None !ready
    in
    match best with
    | None -> assert false
    | Some i ->
      ready := List.filter (fun j -> j <> i) !ready;
      i
  in
  let scheduled = ref 0 in
  while !scheduled < n do
    assert (!ready <> []);
    let i = pick () in
    let data_ready =
      List.fold_left (fun acc q -> Float.max acc finish.(q)) 0. (Dag.preds dag i)
    in
    (* processor that allows the earliest start (frees up first) *)
    let best_proc = ref 0 in
    for k = 1 to p - 1 do
      if proc_free.(k) < proc_free.(!best_proc) then best_proc := k
    done;
    let k = !best_proc in
    let start = Float.max data_ready proc_free.(k) in
    finish.(i) <- start +. Dag.weight dag i;
    proc_free.(k) <- finish.(i);
    order.(k) <- i :: order.(k);
    incr scheduled;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then ready := s :: !ready)
      (Dag.succs dag i)
  done;
  Mapping.make ~p dag ~order:(Array.map List.rev order)

let makespan_at_speed m ~f =
  let dag = Mapping.constraint_dag m in
  let durations = Array.map (fun w -> w /. f) (Dag.weights dag) in
  Dag.critical_path_length dag ~durations

let priority_name = function
  | Bottom_level -> "bottom-level"
  | Top_level -> "top-level"
  | Heaviest_first -> "heaviest-first"
  | Lightest_first -> "lightest-first"
  | Max_out_degree -> "max-out-degree"

let all_priorities =
  [ Bottom_level; Top_level; Heaviest_first; Lightest_first; Max_out_degree ]
