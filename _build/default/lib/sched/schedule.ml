type part = { speed : float; time : float }
type execution = part list

type t = { mapping : Mapping.t; executions : execution list array }

let exec_time e = Es_util.Futil.sum_by (fun p -> p.time) e
let exec_work e = Es_util.Futil.sum_by (fun p -> p.speed *. p.time) e

let exec_energy e =
  Es_util.Futil.sum_by (fun p -> p.speed *. p.speed *. p.speed *. p.time) e

let make mapping ~executions =
  let dag = Mapping.dag mapping in
  if Array.length executions <> Dag.n dag then
    invalid_arg "Schedule.make: executions length mismatch";
  Array.iteri
    (fun i execs ->
      let k = List.length execs in
      if k < 1 || k > 2 then
        invalid_arg (Printf.sprintf "Schedule.make: task %d has %d executions" i k);
      List.iter
        (fun e ->
          List.iter
            (fun p ->
              if p.speed <= 0. || p.time <= 0. then
                invalid_arg "Schedule.make: non-positive part")
            e;
          let w = exec_work e and expect = Dag.weight dag i in
          if not (Es_util.Futil.approx_equal ~rel:1e-6 ~abs:1e-9 w expect) then
            invalid_arg
              (Printf.sprintf "Schedule.make: task %d execution does %g work, weight is %g"
                 i w expect))
        execs)
    executions;
  { mapping; executions = Array.copy executions }

let uniform mapping ~speed =
  let dag = Mapping.dag mapping in
  let executions =
    Array.init (Dag.n dag) (fun i ->
        [ [ { speed; time = Dag.weight dag i /. speed } ] ])
  in
  make mapping ~executions

let of_speeds mapping ~speeds =
  let dag = Mapping.dag mapping in
  if Array.length speeds <> Dag.n dag then
    invalid_arg "Schedule.of_speeds: speeds length mismatch";
  let executions =
    Array.init (Dag.n dag) (fun i ->
        [ [ { speed = speeds.(i); time = Dag.weight dag i /. speeds.(i) } ] ])
  in
  make mapping ~executions

let mapping t = t.mapping
let dag t = Mapping.dag t.mapping
let executions t i = t.executions.(i)
let reexecuted t i = List.length t.executions.(i) = 2
let duration t i = Es_util.Futil.sum_by exec_time t.executions.(i)
let durations t = Array.init (Dag.n (dag t)) (duration t)

let task_energy t i = Es_util.Futil.sum_by exec_energy t.executions.(i)

let energy t =
  Es_util.Futil.sum (Array.init (Dag.n (dag t)) (task_energy t))

let makespan t =
  Dag.critical_path_length (Mapping.constraint_dag t.mapping) ~durations:(durations t)

let start_times t =
  Dag.earliest_start (Mapping.constraint_dag t.mapping) ~durations:(durations t)

let with_execs t i execs =
  let executions = Array.copy t.executions in
  executions.(i) <- execs;
  make t.mapping ~executions

let pp ppf t =
  let d = dag t in
  for i = 0 to Dag.n d - 1 do
    let describe e =
      match e with
      | [ p ] -> Printf.sprintf "f=%g" p.speed
      | parts ->
        String.concat "+"
          (List.map (fun p -> Printf.sprintf "%g@%g" p.speed p.time) parts)
    in
    Format.fprintf ppf "%s: %s@." (Dag.label d i)
      (String.concat " | " (List.map describe t.executions.(i)))
  done
