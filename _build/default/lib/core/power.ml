let energy ~static ~w ~f = w *. ((f *. f) +. (static /. f))
let critical_speed ~static = Es_util.Futil.cbrt (static /. 2.)

let always_on_energy ~static ~p ~deadline ~dynamic =
  dynamic +. (float_of_int p *. static *. deadline)

type result = { speeds : float array; energy : float }

let common_speed_result ~static ~weights f =
  let speeds = Array.map (fun _ -> f) weights in
  let e = Es_util.Futil.sum (Array.map (fun w -> energy ~static ~w ~f) weights) in
  { speeds; energy = e }

let chain_aware ~static ~weights ~deadline ~fmin ~fmax =
  let total = Es_util.Futil.sum weights in
  let f_deadline = total /. deadline in
  if f_deadline > fmax *. (1. +. 1e-12) then None
  else begin
    let f =
      Es_util.Futil.clamp ~lo:fmin ~hi:fmax
        (Float.max f_deadline (critical_speed ~static))
    in
    Some (common_speed_result ~static ~weights f)
  end

let chain_naive ~static ~weights ~deadline ~fmin ~fmax =
  let total = Es_util.Futil.sum weights in
  let f_deadline = total /. deadline in
  if f_deadline > fmax *. (1. +. 1e-12) then None
  else begin
    (* dynamic-only optimiser: slow down as far as the deadline (and
       fmin) allow, blind to leakage *)
    let f = Es_util.Futil.clamp ~lo:fmin ~hi:fmax f_deadline in
    Some (common_speed_result ~static ~weights f)
  end

let ablation_penalty ~static ~weights ~deadline ~fmin ~fmax =
  match
    ( chain_naive ~static ~weights ~deadline ~fmin ~fmax,
      chain_aware ~static ~weights ~deadline ~fmin ~fmax )
  with
  | Some naive, Some aware -> Some (naive.energy /. aware.energy)
  | _ -> None
