type request = {
  mapping : Mapping.t;
  model : Speed.t;
  deadline : float;
  rel : Rel.params option;
}

type answer = {
  schedule : Schedule.t;
  energy : float;
  exact : bool;
  engine : string;
}

let answer ~exact ~engine schedule =
  Ok { schedule; energy = Schedule.energy schedule; exact; engine }

let or_infeasible ~exact ~engine = function
  | Some schedule -> answer ~exact ~engine schedule
  | None -> Error "infeasible: the deadline cannot be met under this model"

let check_rel_consistency model rel =
  let fmin = Speed.fmin model and fmax = Speed.fmax model in
  if
    Es_util.Futil.approx_equal ~rel:1e-9 ~abs:1e-12 rel.Rel.fmin fmin
    && Es_util.Futil.approx_equal ~rel:1e-9 ~abs:1e-12 rel.Rel.fmax fmax
  then Ok ()
  else
    Error
      (Printf.sprintf
         "inconsistent parameters: reliability bounds [%g, %g] differ from the \
          model's [%g, %g]"
         rel.Rel.fmin rel.Rel.fmax fmin fmax)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let solve ?(exact_threshold = 14) { mapping; model; deadline; rel } =
  let n = Dag.n (Mapping.dag mapping) in
  match (model, rel) with
  | Speed.Continuous { fmin; fmax }, None ->
    or_infeasible ~exact:true ~engine:"continuous convex solve"
      (Bicrit_continuous.solve ~deadline ~fmin ~fmax mapping)
  | Speed.Continuous _, Some rel -> (
    let* () = check_rel_consistency model rel in
    match Heuristics.best_of ~rel ~deadline mapping with
    | Some (sol, _) ->
      answer ~exact:false ~engine:"tri-crit best-of heuristics" sol.Heuristics.schedule
    | None -> Error "infeasible: the deadline cannot be met under this model")
  | Speed.Vdd_hopping levels, None ->
    or_infeasible ~exact:true ~engine:"vdd-hopping LP"
      (Bicrit_vdd.solve ~deadline ~levels mapping)
  | Speed.Vdd_hopping levels, Some rel -> (
    let* () = check_rel_consistency model rel in
    if n <= exact_threshold - 4 then begin
      match Tricrit_vdd.solve_exact ~max_n:(exact_threshold - 4) ~rel ~deadline ~levels mapping with
      | Some sol ->
        answer ~exact:true ~engine:"tri-crit vdd exact (subset x LP)"
          sol.Tricrit_vdd.schedule
      | None -> Error "infeasible: the deadline cannot be met under this model"
    end
    else begin
      match Tricrit_vdd.solve_heuristic ~rel ~deadline ~levels mapping with
      | Some sol ->
        answer ~exact:false ~engine:"tri-crit vdd continuous-bridge heuristic"
          sol.Tricrit_vdd.schedule
      | None -> Error "infeasible: the deadline cannot be met under this model"
    end)
  | Speed.Discrete levels, None ->
    if n <= exact_threshold then begin
      match Bicrit_discrete.solve_exact ?node_limit:None ~deadline ~levels mapping with
      | Some r -> answer ~exact:true ~engine:"discrete branch-and-bound" r.Bicrit_discrete.schedule
      | None -> Error "infeasible: the deadline cannot be met under this model"
    end
    else
      or_infeasible ~exact:false ~engine:"discrete round-up approximation"
        (Bicrit_discrete.round_up ~deadline ~levels mapping)
  | Speed.Incremental { fmin; fmax; delta }, None ->
    or_infeasible ~exact:false ~engine:"incremental round-up approximation"
      (Bicrit_incremental.approximate ~deadline ~fmin ~fmax ~delta mapping)
  | (Speed.Discrete _ | Speed.Incremental _), Some _ ->
    Error
      "unsupported: the paper studies TRI-CRIT under the CONTINUOUS and \
       VDD-HOPPING models only"
