let relaxation ~rel ~deadline mapping =
  Bicrit_continuous.energy_lower_bound ~deadline ~fmin:rel.Rel.fmin ~fmax:rel.Rel.fmax
    mapping

let per_task ~rel mapping =
  let dag = Mapping.dag mapping in
  let task_bound i =
    let w = Dag.weight dag i in
    let single =
      let f = Float.max rel.Rel.fmin rel.Rel.frel in
      w *. f *. f
    in
    match Rel.min_reexec_speed rel ~w with
    | None -> single
    | Some flo ->
      let f = Float.max rel.Rel.fmin flo in
      Float.min single (2. *. w *. f *. f)
  in
  Es_util.Futil.sum (Array.init (Dag.n dag) task_bound)

let tricrit ~rel ~deadline mapping =
  Float.max (relaxation ~rel ~deadline mapping) (per_task ~rel mapping)
