type solution = Heuristics.solution

(* Window allocation by equivalent weight over [windows] (a tree of the
   same shape, possibly with inflated weights) with the fork oracle
   deciding each *original* leaf inside its window. *)
let decide_with_windows ~rel ~deadline sp windows =
  let decisions = ref [] in
  let rec alloc node wnode window =
    match (node, wnode) with
    | Sp.Leaf w, Sp.Leaf _ ->
      let reexec =
        match Tricrit_fork.best_in_window ~rel ~w ~window with
        | Some d -> d.Tricrit_fork.reexec
        | None -> false
      in
      decisions := reexec :: !decisions
    | Sp.Series (a, b), Sp.Series (wa_t, wb_t) ->
      let wa = Bicrit_continuous.sp_equivalent_weight wa_t in
      let wb = Bicrit_continuous.sp_equivalent_weight wb_t in
      let ta = window *. wa /. (wa +. wb) in
      alloc a wa_t ta;
      alloc b wb_t (window -. ta)
    | Sp.Parallel (a, b), Sp.Parallel (wa_t, wb_t) ->
      alloc a wa_t window;
      alloc b wb_t window
    | _ -> invalid_arg "Tricrit_sp: window tree shape mismatch"
  in
  alloc sp windows deadline;
  Array.of_list (List.rev !decisions)

let decide_subset ~rel ~deadline sp = decide_with_windows ~rel ~deadline sp sp

(* Rebuild the SP tree with effective leaf weights (2w for re-executed
   leaves), to re-run the window allocation against the time the first
   pass actually committed to. *)
let effective_tree sp subset =
  let idx = ref 0 in
  let rec rebuild = function
    | Sp.Leaf w ->
      let i = !idx in
      incr idx;
      Sp.Leaf (if subset.(i) then 2. *. w else w)
    | Sp.Series (a, b) ->
      let a' = rebuild a in
      let b' = rebuild b in
      Sp.Series (a', b')
    | Sp.Parallel (a, b) ->
      let a' = rebuild a in
      let b' = rebuild b in
      Sp.Parallel (a', b')
  in
  rebuild sp

let solve ~rel ~deadline sp =
  let dag = Sp.to_dag sp in
  let mapping = Mapping.one_task_per_proc dag in
  let pass1 = decide_subset ~rel ~deadline sp in
  (* second pass: windows computed against the doubled workloads the
     first pass committed to; decisions may both grow (more slack found
     on light branches) or shrink (overcommitted branches) *)
  let pass2 =
    (* windows against the doubled workloads of pass 1, decisions still
       about the original tasks *)
    decide_with_windows ~rel ~deadline sp (effective_tree sp pass1)
  in
  let better a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some (sa : solution), Some sb -> if sb.energy < sa.energy then Some sb else Some sa
  in
  let eval subset = Heuristics.evaluate_subset ~rel ~deadline mapping ~subset in
  let best = better (eval pass1) (better (eval pass2) None) in
  match best with
  | Some sol -> Some sol
  | None ->
    (* the window proxy over-committed: retreat to no re-execution *)
    Heuristics.baseline ~rel ~deadline mapping
