lib/core/tricrit_sp.mli: Heuristics Rel Sp
