lib/core/tricrit_fork.mli: Dag Rel Schedule
