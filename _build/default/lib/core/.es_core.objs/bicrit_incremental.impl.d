lib/core/bicrit_incremental.ml: Array Bicrit_continuous Dag Es_util Mapping Schedule Speed
