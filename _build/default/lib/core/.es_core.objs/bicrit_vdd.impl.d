lib/core/bicrit_vdd.ml: Array Dag Es_lp Es_util Float List Mapping Printf Schedule
