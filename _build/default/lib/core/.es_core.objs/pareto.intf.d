lib/core/pareto.mli: Mapping Rel
