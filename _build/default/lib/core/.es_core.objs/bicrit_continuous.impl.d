lib/core/bicrit_continuous.ml: Array Dag Es_linalg Es_numopt Es_util Float Fun List Mapping Schedule Sp
