lib/core/tricrit_vdd.mli: Mapping Rel Schedule
