lib/core/bicrit_incremental.mli: Mapping Schedule
