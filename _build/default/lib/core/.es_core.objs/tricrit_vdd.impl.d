lib/core/tricrit_vdd.ml: Array Dag Es_lp Es_numopt Es_util Float Heuristics List Mapping Printf Rel Schedule
