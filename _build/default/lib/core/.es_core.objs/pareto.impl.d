lib/core/pareto.ml: Array Bicrit_continuous Dag Heuristics List Mapping
