lib/core/tricrit_fork.ml: Array Dag Es_numopt Float List Mapping Rel Schedule
