lib/core/tricrit_exact.ml: Array Dag Float Fun Heuristics List Mapping Printf Rel
