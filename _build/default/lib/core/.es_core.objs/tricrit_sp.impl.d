lib/core/tricrit_sp.ml: Array Bicrit_continuous Heuristics List Mapping Sp Tricrit_fork
