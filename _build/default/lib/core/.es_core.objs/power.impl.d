lib/core/power.ml: Array Es_util Float
