lib/core/bicrit_discrete.mli: Mapping Schedule
