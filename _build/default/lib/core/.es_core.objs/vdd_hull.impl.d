lib/core/vdd_hull.ml: Array Dag Float List Mapping Schedule
