lib/core/tricrit_exact.mli: Dag Heuristics Mapping Rel
