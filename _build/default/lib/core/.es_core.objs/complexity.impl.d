lib/core/complexity.ml: Array Bicrit_discrete Dag Es_util Float List Mapping Rel Speed
