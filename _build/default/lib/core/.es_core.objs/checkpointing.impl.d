lib/core/checkpointing.ml: Array Es_util Float List Option Rel Tricrit_chain
