lib/core/heuristics.ml: Array Bicrit_continuous Dag Float Fun List Mapping Option Rel Schedule
