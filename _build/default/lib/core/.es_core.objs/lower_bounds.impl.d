lib/core/lower_bounds.ml: Array Bicrit_continuous Dag Es_util Float Mapping Rel
