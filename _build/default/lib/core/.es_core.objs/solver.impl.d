lib/core/solver.ml: Bicrit_continuous Bicrit_discrete Bicrit_incremental Bicrit_vdd Dag Es_util Heuristics Mapping Printf Rel Schedule Speed Tricrit_vdd
