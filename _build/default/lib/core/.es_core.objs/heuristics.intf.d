lib/core/heuristics.mli: Mapping Rel Schedule
