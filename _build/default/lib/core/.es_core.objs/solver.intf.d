lib/core/solver.mli: Mapping Rel Schedule Speed
