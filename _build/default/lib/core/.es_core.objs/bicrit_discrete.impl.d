lib/core/bicrit_discrete.ml: Array Bicrit_continuous Dag Es_util Float List Mapping Schedule
