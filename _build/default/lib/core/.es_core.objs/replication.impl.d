lib/core/replication.ml: Array Es_numopt Es_util Float Printf Rel
