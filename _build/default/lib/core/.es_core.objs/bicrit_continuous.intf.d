lib/core/bicrit_continuous.mli: Mapping Schedule Sp
