lib/core/complexity.mli: Mapping Rel
