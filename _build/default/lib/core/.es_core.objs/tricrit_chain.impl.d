lib/core/tricrit_chain.ml: Array Dag Es_numopt Es_util Float List Mapping Printf Rel Schedule
