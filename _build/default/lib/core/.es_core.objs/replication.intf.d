lib/core/replication.mli: Rel
