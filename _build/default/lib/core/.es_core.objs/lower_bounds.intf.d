lib/core/lower_bounds.mli: Mapping Rel
