lib/core/bicrit_vdd.mli: Mapping Schedule
