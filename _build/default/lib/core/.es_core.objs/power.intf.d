lib/core/power.mli:
