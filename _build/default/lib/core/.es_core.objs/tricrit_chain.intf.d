lib/core/tricrit_chain.mli: Mapping Rel Schedule
