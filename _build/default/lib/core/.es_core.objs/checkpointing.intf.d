lib/core/checkpointing.mli: Rel
