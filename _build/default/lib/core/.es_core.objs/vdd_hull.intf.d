lib/core/vdd_hull.mli: Mapping Schedule
