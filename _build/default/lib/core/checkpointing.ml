type segmentation = int list

type solution = {
  segments : segmentation;
  speeds : float array;
  energy : float;
  time : float;
}

let segment_floor ~rel ~work = Rel.min_reexec_speed rel ~w:work

let segment_works ~checkpoint_work ~weights segmentation =
  let n = Array.length weights in
  if List.fold_left ( + ) 0 segmentation <> n || List.exists (fun l -> l <= 0) segmentation
  then None
  else begin
    let pos = ref 0 in
    let works =
      List.map
        (fun len ->
          let acc = ref checkpoint_work in
          for k = !pos to !pos + len - 1 do
            acc := !acc +. weights.(k)
          done;
          pos := !pos + len;
          !acc)
        segmentation
    in
    Some (Array.of_list works)
  end

let evaluate ~rel ~checkpoint_work ~deadline ~weights segmentation =
  match segment_works ~checkpoint_work ~weights segmentation with
  | None -> None
  | Some works ->
    let exception Cannot in
    (match
       Array.map
         (fun v ->
           match segment_floor ~rel ~work:v with
           | None -> raise Cannot
           | Some flo -> Float.max rel.Rel.fmin flo)
         works
     with
    | exception Cannot -> None
    | floors ->
      let eff_weights = Array.map (fun v -> 2. *. v) works in
      (match
         Tricrit_chain.waterfill ~eff_weights ~floors ~fmax:rel.Rel.fmax ~deadline
       with
      | None -> None
      | Some speeds ->
        let energy = ref 0. and time = ref 0. in
        Array.iteri
          (fun s f ->
            energy := !energy +. (eff_weights.(s) *. f *. f);
            time := !time +. (eff_weights.(s) /. f))
          speeds;
        Some { segments = segmentation; speeds; energy = !energy; time = !time }))

let solve ?(speed_grid = 64) ~rel ~checkpoint_work ~deadline ~weights =
  let n = Array.length weights in
  if n = 0 then None
  else begin
    let prefix = Array.make (n + 1) 0. in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) +. weights.(i)
    done;
    let interval_work i j = prefix.(j) -. prefix.(i) +. checkpoint_work in
    (* precompute per-interval reliability floors *)
    let floor_tbl = Array.make_matrix (n + 1) (n + 1) None in
    for i = 0 to n - 1 do
      for j = i + 1 to n do
        floor_tbl.(i).(j) <-
          Option.map (Float.max rel.Rel.fmin)
            (segment_floor ~rel ~work:(interval_work i j))
      done
    done;
    let best = ref None in
    let try_level fc =
      (* interval DP: minimise Σ 2V·f² with f = clamp(max(fc, floor)) *)
      let dp = Array.make (n + 1) infinity in
      let back = Array.make (n + 1) (-1) in
      dp.(0) <- 0.;
      for j = 1 to n do
        for i = 0 to j - 1 do
          match floor_tbl.(i).(j) with
          | None -> ()
          | Some flo ->
            if flo <= rel.Rel.fmax *. (1. +. 1e-12) then begin
              let f = Es_util.Futil.clamp ~lo:flo ~hi:rel.Rel.fmax (Float.max fc flo) in
              let v = interval_work i j in
              let cost = dp.(i) +. (2. *. v *. f *. f) in
              if cost < dp.(j) then begin
                dp.(j) <- cost;
                back.(j) <- i
              end
            end
        done
      done;
      if dp.(n) < infinity then begin
        (* reconstruct the segmentation and re-optimise exactly *)
        let rec rebuild j acc =
          if j = 0 then acc else rebuild back.(j) ((j - back.(j)) :: acc)
        in
        let segmentation = rebuild n [] in
        match evaluate ~rel ~checkpoint_work ~deadline ~weights segmentation with
        | None -> ()
        | Some sol -> (
          match !best with
          | Some b when b.energy <= sol.energy -> ()
          | _ -> best := Some sol)
      end
    in
    for k = 0 to speed_grid do
      let fc =
        rel.Rel.fmin
        +. ((rel.Rel.fmax -. rel.Rel.fmin) *. float_of_int k /. float_of_int speed_grid)
      in
      try_level fc
    done;
    !best
  end

let reexec_equivalent ~rel ~deadline ~weights =
  let segmentation = List.init (Array.length weights) (fun _ -> 1) in
  evaluate ~rel ~checkpoint_work:0. ~deadline ~weights segmentation
