module Futil = Es_util.Futil

module Mat = Es_linalg.Mat
module Barrier = Es_numopt.Barrier

type result = { speeds : float array; energy : float }

let chain ~weights ~deadline ~fmin ~fmax =
  let total = Futil.sum weights in
  let f = Float.max fmin (total /. deadline) in
  if f > fmax *. (1. +. 1e-12) then None
  else begin
    let f = Float.min f fmax in
    let speeds = Array.map (fun _ -> f) weights in
    Some { speeds; energy = total *. f *. f }
  end

let cubic_norm ws =
  Futil.cbrt (Futil.sum (Array.map Futil.cube ws))

let fork_energy ~root ~children ~deadline =
  Futil.cube (cubic_norm children +. root) /. (deadline *. deadline)

let fork_speeds ~root ~children ~deadline ~fmax =
  let w3 = cubic_norm children in
  let f0 = (w3 +. root) /. deadline in
  if f0 <= fmax then begin
    let speeds = Array.append [| f0 |] (Array.map (fun w -> f0 *. w /. w3) children) in
    let energy =
      Futil.sum (Array.mapi (fun i f -> (if i = 0 then root else children.(i - 1)) *. f *. f) speeds)
    in
    Some { speeds; energy }
  end
  else begin
    (* Source saturated at fmax; the children share the remaining
       window uniformly in time. *)
    let window = deadline -. (root /. fmax) in
    if window <= 0. then None
    else begin
      let child_speeds = Array.map (fun w -> w /. window) children in
      if Array.exists (fun f -> f > fmax *. (1. +. 1e-12)) child_speeds then None
      else begin
        let speeds = Array.append [| fmax |] child_speeds in
        let energy =
          root *. fmax *. fmax
          +. Futil.sum (Array.map2 (fun w f -> w *. f *. f) children child_speeds)
        in
        Some { speeds; energy }
      end
    end
  end

let rec sp_equivalent_weight = function
  | Sp.Leaf w -> w
  | Sp.Series (a, b) -> sp_equivalent_weight a +. sp_equivalent_weight b
  | Sp.Parallel (a, b) ->
    Futil.cbrt (Futil.cube (sp_equivalent_weight a) +. Futil.cube (sp_equivalent_weight b))

let sp_speeds sp ~deadline =
  let speeds = ref [] in
  (* Windows: a leaf given window T runs at w/T; series nodes split the
     window proportionally to equivalent weights; parallel branches
     each get the whole window. *)
  let rec alloc node window =
    match node with
    | Sp.Leaf w -> speeds := (w /. window) :: !speeds
    | Sp.Series (a, b) ->
      let wa = sp_equivalent_weight a and wb = sp_equivalent_weight b in
      let ta = window *. wa /. (wa +. wb) in
      alloc a ta;
      alloc b (window -. ta)
    | Sp.Parallel (a, b) ->
      alloc a window;
      alloc b window
  in
  alloc sp deadline;
  let speeds = Array.of_list (List.rev !speeds) in
  let weights = Sp.weights sp in
  let energy = Futil.sum (Array.map2 (fun w f -> w *. f *. f) weights speeds) in
  { speeds; energy }

(* ---- general DAG: convex program via the log-barrier method ------- *)

(* Longest path measured in hop count, for spreading the strictly
   feasible starting point. *)
let levels cdag =
  let order = Dag.topological_order cdag in
  let lv = Array.make (Dag.n cdag) 0 in
  Array.iter
    (fun i ->
      let m = List.fold_left (fun acc p -> max acc (lv.(p) + 1)) 0 (Dag.preds cdag i) in
      lv.(i) <- m)
    order;
  lv

let solve_general ?eff_weights ?lo ?hi ?(tol = 1e-8) ~deadline mapping =
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  let w = match eff_weights with Some a -> Array.copy a | None -> Dag.weights cdag in
  let lo = match lo with Some a -> Array.copy a | None -> Array.make n 0. in
  let hi = match hi with Some a -> Array.copy a | None -> Array.make n infinity in
  assert (Array.length w = n && Array.length lo = n && Array.length hi = n);
  let bounds_ok = Array.for_all Fun.id (Array.init n (fun i -> lo.(i) <= hi.(i))) in
  if not bounds_ok then None
  else begin
    let d_min = Array.init n (fun i -> w.(i) /. hi.(i)) in
    let makespan_of durations = Dag.critical_path_length cdag ~durations in
    let m_fast = makespan_of d_min in
    if m_fast > deadline *. (1. +. 1e-9) then None
    else if m_fast >= deadline *. (1. -. 1e-9) then begin
      (* no slack: run everything flat out *)
      let speeds = Array.copy hi in
      let energy = Futil.sum (Array.map2 (fun wi f -> wi *. f *. f) w speeds) in
      Some { speeds; energy }
    end
    else begin
      (* strictly feasible start *)
      let target = m_fast +. (0.9 *. (deadline -. m_fast)) in
      let rho = target /. m_fast in
      let d0 =
        Array.init n (fun i ->
            let fast = d_min.(i) in
            if lo.(i) <= 0. then fast *. rho
            else begin
              let slow = w.(i) /. lo.(i) in
              Float.min (fast *. rho) (0.5 *. (fast +. slow))
            end)
      in
      let es0 = Dag.earliest_start cdag ~durations:d0 in
      let m0 = makespan_of d0 in
      let lv = levels cdag in
      let alpha = (deadline -. m0) /. float_of_int (n + 2) in
      let s0 = Array.init n (fun i -> es0.(i) +. (alpha *. (float_of_int lv.(i) +. 0.5))) in
      (* variables x = [d; s] *)
      let rows = ref [] and rhs = ref [] in
      let add_row coeffs b =
        rows := coeffs :: !rows;
        rhs := b :: !rhs
      in
      let row () = Array.make (2 * n) 0. in
      List.iter
        (fun (i, j) ->
          (* s_i + d_i - s_j <= 0 *)
          let r = row () in
          r.(i) <- 1.;
          r.(n + i) <- 1.;
          r.(n + j) <- -1.;
          add_row r 0.)
        (Dag.edges cdag);
      for i = 0 to n - 1 do
        (* s_i + d_i <= D *)
        let r = row () in
        r.(i) <- 1.;
        r.(n + i) <- 1.;
        add_row r deadline;
        (* -s_i <= 0 *)
        let r = row () in
        r.(n + i) <- -1.;
        add_row r 0.;
        (* -d_i <= -w_i/hi_i  (speed at most hi) *)
        let r = row () in
        r.(i) <- -1.;
        add_row r (-.d_min.(i));
        (* d_i <= w_i/lo_i (speed at least lo), only when lo > 0 *)
        if lo.(i) > 0. then begin
          let r = row () in
          r.(i) <- 1.;
          add_row r (w.(i) /. lo.(i))
        end
      done;
      let a = Array.of_list (List.rev !rows) in
      let b = Array.of_list (List.rev !rhs) in
      let x0 = Array.append d0 s0 in
      let objective =
        {
          Barrier.f =
            (fun x ->
              let acc = ref 0. in
              for i = 0 to n - 1 do
                acc := !acc +. (Futil.cube w.(i) /. (x.(i) *. x.(i)))
              done;
              !acc);
          grad =
            (fun x ->
              let g = Array.make (2 * n) 0. in
              for i = 0 to n - 1 do
                g.(i) <- -2. *. Futil.cube w.(i) /. Futil.cube x.(i)
              done;
              g);
          hess =
            (fun x ->
              let h = Mat.make (2 * n) (2 * n) 0. in
              for i = 0 to n - 1 do
                h.(i).(i) <- 6. *. Futil.cube w.(i) /. (Futil.square x.(i) *. Futil.square x.(i))
              done;
              h);
        }
      in
      let x =
        if Barrier.feasible_start ~a ~b ~x0 then
          Barrier.minimize ~tol ?t0:None ?mu:None ?newton_tol:None ?max_newton:None
            objective ~a ~b ~x0
        else x0
      in
      let speeds =
        Array.init n (fun i ->
            let f = w.(i) /. x.(i) in
            let f = Float.max f lo.(i) in
            Float.min f hi.(i))
      in
      (* numeric safety: rescale if the rounded speeds overrun D *)
      let durations = Array.init n (fun i -> w.(i) /. speeds.(i)) in
      let ms = makespan_of durations in
      let speeds =
        if ms > deadline then
          Array.map2 (fun f h -> Float.min (f *. (ms /. deadline) *. (1. +. 1e-12)) h) speeds hi
        else speeds
      in
      let energy = Futil.sum (Array.map2 (fun wi f -> wi *. f *. f) w speeds) in
      Some { speeds; energy }
    end
  end

let solve ~deadline ~fmin ~fmax mapping =
  let n = Dag.n (Mapping.dag mapping) in
  let lo = Array.make n fmin and hi = Array.make n fmax in
  match solve_general ~lo ~hi ~deadline mapping with
  | None -> None
  | Some { speeds; _ } -> Some (Schedule.of_speeds mapping ~speeds)

let energy_lower_bound ~deadline ~fmin ~fmax mapping =
  let n = Dag.n (Mapping.dag mapping) in
  let lo = Array.make n fmin and hi = Array.make n fmax in
  match solve_general ~lo ~hi ~deadline mapping with
  | Some { energy; _ } -> energy
  | None ->
    Futil.sum (Array.map (fun w -> w *. fmin *. fmin) (Dag.weights (Mapping.dag mapping)))
