type kind = Single | Reexecute | Replicate

type solution = {
  kinds : kind array;
  speeds : float array;
  energy : float;
  time : float;
}

let kind_name = function
  | Single -> "single"
  | Reexecute -> "re-execute"
  | Replicate -> "replicate"

(* Per-task coefficients: time = tc/f, energy = ec·f², floor on f. *)
let coeffs ~rel w = function
  | Single -> Some (w, w, Float.max rel.Rel.fmin rel.Rel.frel)
  | Reexecute -> (
    match Rel.min_reexec_speed rel ~w with
    | None -> None
    | Some flo -> Some (2. *. w, 2. *. w, Float.max rel.Rel.fmin flo))
  | Replicate -> (
    match Rel.min_reexec_speed rel ~w with
    | None -> None
    | Some flo -> Some (w, 2. *. w, Float.max rel.Rel.fmin flo))

let evaluate ~rel ~deadline ~weights ~kinds =
  let n = Array.length weights in
  assert (Array.length kinds = n);
  let exception Cannot in
  match Array.init n (fun i ->
      match coeffs ~rel weights.(i) kinds.(i) with
      | Some c -> c
      | None -> raise Cannot)
  with
  | exception Cannot -> None
  | profile ->
    let fmax = rel.Rel.fmax in
    (* KKT: f_i = kappa_i · fc clamped into [floor_i, fmax], with
       kappa_i = (T_i/E_i)^{1/3}. *)
    let kappa = Array.map (fun (tc, ec, _) -> Es_util.Futil.cbrt (tc /. ec)) profile in
    let speed_at fc i =
      let _, _, floor = profile.(i) in
      Es_util.Futil.clamp ~lo:floor ~hi:fmax (kappa.(i) *. fc)
    in
    let time_at fc =
      let acc = ref 0. in
      for i = 0 to n - 1 do
        let tc, _, _ = profile.(i) in
        acc := !acc +. (tc /. speed_at fc i)
      done;
      !acc
    in
    let floors_ok = Array.for_all (fun (_, _, fl) -> fl <= fmax *. (1. +. 1e-12)) profile in
    if not floors_ok then None
    else begin
      let fc_hi = fmax /. Array.fold_left (fun a k -> Float.min a k) 1. kappa in
      if time_at fc_hi > deadline *. (1. +. 1e-9) then None
      else begin
        let fc =
          if time_at 0. <= deadline then 0.
          else
            Es_numopt.Scalar.root_monotone ~tol:1e-14
              ~f:(fun fc -> time_at fc -. deadline)
              ~lo:0. ~hi:fc_hi
        in
        let speeds = Array.init n (speed_at fc) in
        let energy = ref 0. and time = ref 0. in
        for i = 0 to n - 1 do
          let tc, ec, _ = profile.(i) in
          energy := !energy +. (ec *. speeds.(i) *. speeds.(i));
          time := !time +. (tc /. speeds.(i))
        done;
        Some { kinds = Array.copy kinds; speeds; energy = !energy; time = !time }
      end
    end

let all_kinds = [| Single; Reexecute; Replicate |]

let better a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some sa, Some sb -> if sb.energy < sa.energy then Some sb else Some sa

let solve_over_kinds options ~rel ~deadline ~weights =
  let n = Array.length weights in
  let kinds = Array.make n Single in
  let best = ref None in
  let rec enum i =
    if i = n then best := better !best (evaluate ~rel ~deadline ~weights ~kinds)
    else
      Array.iter
        (fun k ->
          kinds.(i) <- k;
          enum (i + 1))
        options
  in
  enum 0;
  !best

let solve_exact ?(max_n = 12) ~rel ~deadline ~weights =
  if Array.length weights > max_n then
    invalid_arg
      (Printf.sprintf "Replication.solve_exact: n = %d > %d" (Array.length weights) max_n);
  solve_over_kinds all_kinds ~rel ~deadline ~weights

let reexec_only ~rel ~deadline ~weights =
  if Array.length weights <= 20 then
    solve_over_kinds [| Single; Reexecute |] ~rel ~deadline ~weights
  else None

let solve_greedy ~rel ~deadline ~weights =
  let n = Array.length weights in
  let kinds = Array.make n Single in
  let current = ref (evaluate ~rel ~deadline ~weights ~kinds) in
  match !current with
  | None -> None
  | Some _ ->
    let improved = ref true in
    while !improved do
      improved := false;
      let best_move = ref None in
      for i = 0 to n - 1 do
        let saved = kinds.(i) in
        Array.iter
          (fun k ->
            if k <> saved then begin
              kinds.(i) <- k;
              (match (evaluate ~rel ~deadline ~weights ~kinds, !current) with
              | Some cand, Some cur when cand.energy < cur.energy -. 1e-12 -> (
                match !best_move with
                | Some (_, _, e) when e <= cand.energy -> ()
                | _ -> best_move := Some (i, k, cand.energy))
              | _ -> ());
              kinds.(i) <- saved
            end)
          all_kinds
      done;
      match !best_move with
      | Some (i, k, _) ->
        kinds.(i) <- k;
        current := evaluate ~rel ~deadline ~weights ~kinds;
        improved := true
      | None -> ()
    done;
    !current
