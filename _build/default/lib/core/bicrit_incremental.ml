let grid ~fmin ~fmax ~delta =
  match Speed.levels (Speed.incremental ~fmin ~fmax ~delta) with
  | Some levels -> levels
  | None -> assert false

let bound ~fmin ~delta ~k =
  let base = Es_util.Futil.square (1. +. (delta /. fmin)) in
  match k with
  | None -> base
  | Some kk -> base *. Es_util.Futil.square (1. +. (1. /. float_of_int kk))

let approximate ~deadline ~fmin ~fmax ~delta mapping =
  let levels = grid ~fmin ~fmax ~delta in
  let top = levels.(Array.length levels - 1) in
  let n = Dag.n (Mapping.dag mapping) in
  (* Relax against the grid's own top speed so that round-up always
     lands on an admissible level. *)
  let lo = Array.make n fmin and hi = Array.make n top in
  match Bicrit_continuous.solve_general ~lo ~hi ~deadline mapping with
  | None -> None
  | Some { speeds; _ } ->
    let round f =
      let rec find k =
        if k >= Array.length levels then top
        else if levels.(k) >= f *. (1. -. 1e-12) then levels.(k)
        else find (k + 1)
      in
      find 0
    in
    Some (Schedule.of_speeds mapping ~speeds:(Array.map round speeds))
