type solution = Heuristics.solution

let candidates ~rel dag =
  let frel_floor = Float.max rel.Rel.fmin rel.Rel.frel in
  Array.init (Dag.n dag) (fun i ->
      let w = Dag.weight dag i in
      match Rel.min_reexec_speed rel ~w with
      | None -> false
      | Some flo ->
        let flo = Float.max flo rel.Rel.fmin in
        (* with unlimited time, re-execution pays iff 2·f_lo² < f_rel² *)
        2. *. flo *. flo < frel_floor *. frel_floor)

let solve ?(max_n = 12) ~rel ~deadline mapping =
  let dag = Mapping.dag mapping in
  let n = Dag.n dag in
  let cand = candidates ~rel dag in
  let cand_ids = List.filter (fun i -> cand.(i)) (List.init n Fun.id) in
  let k = List.length cand_ids in
  if k > max_n then
    invalid_arg (Printf.sprintf "Tricrit_exact.solve: %d candidates > %d" k max_n);
  let ids = Array.of_list cand_ids in
  let subset = Array.make n false in
  let best = ref None in
  let consider () =
    match Heuristics.evaluate_subset ~rel ~deadline mapping ~subset with
    | None -> ()
    | Some sol -> (
      match !best with
      | Some (b : solution) when b.energy <= sol.Heuristics.energy -> ()
      | _ -> best := Some sol)
  in
  let rec enum j =
    if j = k then consider ()
    else begin
      subset.(ids.(j)) <- false;
      enum (j + 1);
      subset.(ids.(j)) <- true;
      enum (j + 1);
      subset.(ids.(j)) <- false
    end
  in
  enum 0;
  !best

let heuristic_gap ?max_n ~rel ~deadline mapping =
  match
    (Heuristics.best_of ~rel ~deadline mapping, solve ?max_n ~rel ~deadline mapping)
  with
  | Some (h, _), Some e -> Some (h.Heuristics.energy /. e.Heuristics.energy)
  | _ -> None
