type two_partition = {
  mapping : Mapping.t;
  levels : float array;
  deadline : float;
  energy_threshold : float;
}

let of_two_partition items =
  if Array.length items = 0 then invalid_arg "Complexity.of_two_partition: empty";
  Array.iter
    (fun a -> if a <= 0 then invalid_arg "Complexity.of_two_partition: non-positive item")
    items;
  let weights = Array.map float_of_int items in
  let s = Es_util.Futil.sum weights in
  let n = Array.length items in
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  let dag = Dag.make ?labels:None ~weights ~edges in
  {
    mapping = Mapping.single_processor dag;
    levels = [| 1.; 2. |];
    deadline = 3. *. s /. 4.;
    energy_threshold = 5. *. s /. 2.;
  }

let decide_two_partition items =
  let r = of_two_partition items in
  match
    Bicrit_discrete.solve_exact ?node_limit:None ~deadline:r.deadline ~levels:r.levels
      r.mapping
  with
  | None -> false
  | Some { energy; _ } -> energy <= r.energy_threshold *. (1. +. 1e-9)

let two_partition_brute_force items =
  let n = Array.length items in
  let total = Array.fold_left ( + ) 0 items in
  if total mod 2 = 1 then false
  else begin
    let target = total / 2 in
    let rec search i acc = acc = target || (i < n && (search (i + 1) (acc + items.(i)) || search (i + 1) acc)) in
    search 0 0
  end

type knapsack = { savings : float array; costs : float array; budget : float }

let knapsack_view ~rel ~deadline ~weights =
  let frel = Float.max rel.Rel.fmin rel.Rel.frel in
  let exception Cannot in
  match
    Array.map
      (fun w ->
        match Rel.min_reexec_speed rel ~w with
        | None -> raise Cannot
        | Some flo ->
          let flo = Float.max flo rel.Rel.fmin in
          let saving = w *. ((frel *. frel) -. (2. *. flo *. flo)) in
          let cost = (2. *. w /. flo) -. (w /. frel) in
          (saving, cost))
      weights
  with
  | exception Cannot -> None
  | pairs ->
    let budget =
      deadline -. Es_util.Futil.sum (Array.map (fun w -> w /. frel) weights)
    in
    Some
      {
        savings = Array.map fst pairs;
        costs = Array.map snd pairs;
        budget;
      }

let knapsack_optimal k =
  let n = Array.length k.savings in
  let best = ref 0. and best_set = ref (Array.make n false) in
  let set = Array.make n false in
  let rec enum i saving cost =
    if cost > k.budget +. 1e-12 then ()
    else if i = n then begin
      if saving > !best then begin
        best := saving;
        best_set := Array.copy set
      end
    end
    else begin
      set.(i) <- false;
      enum (i + 1) saving cost;
      set.(i) <- true;
      enum (i + 1) (saving +. k.savings.(i)) (cost +. k.costs.(i));
      set.(i) <- false
    end
  in
  enum 0 0. 0.;
  (!best_set, !best)

let incremental_of_two_partition items =
  let r = of_two_partition items in
  (* {1, 2} is exactly the incremental grid fmin=1, delta=1, fmax=2 *)
  (match Speed.levels (Speed.incremental ~fmin:1. ~fmax:2. ~delta:1.) with
  | Some grid -> assert (grid = r.levels)
  | None -> assert false);
  r
