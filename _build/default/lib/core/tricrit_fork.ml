type decision = { reexec : bool; speed : float; energy : float }

let best_in_window ~rel ~w ~window =
  if window <= 0. then None
  else begin
    let fmax = rel.Rel.fmax and fmin = rel.Rel.fmin in
    let single =
      let f = Float.max (Float.max rel.Rel.frel fmin) (w /. window) in
      if f <= fmax *. (1. +. 1e-12) then begin
        let f = Float.min f fmax in
        Some { reexec = false; speed = f; energy = w *. f *. f }
      end
      else None
    in
    let double =
      match Rel.min_reexec_speed rel ~w with
      | None -> None
      | Some flo ->
        let f = Float.max (Float.max flo fmin) (2. *. w /. window) in
        if f <= fmax *. (1. +. 1e-12) then begin
          let f = Float.min f fmax in
          Some { reexec = true; speed = f; energy = 2. *. w *. f *. f }
        end
        else None
    in
    match (single, double) with
    | None, d -> d
    | s, None -> s
    | Some s, Some d -> Some (if d.energy < s.energy then d else s)
  end

type solution = {
  schedule : Schedule.t;
  energy : float;
  reexecuted : bool array;
  source_window : float;
}

let check_fork dag =
  let n = Dag.n dag in
  if n < 2 then invalid_arg "Tricrit_fork: need a source and at least one child";
  if Dag.preds dag 0 <> [] then invalid_arg "Tricrit_fork: task 0 must be the source";
  for i = 1 to n - 1 do
    if Dag.preds dag i <> [ 0 ] || Dag.succs dag i <> [] then
      invalid_arg "Tricrit_fork: not a fork rooted at task 0"
  done

let total_cost ~rel ~deadline dag t0 =
  let n = Dag.n dag in
  let source = best_in_window ~rel ~w:(Dag.weight dag 0) ~window:t0 in
  match source with
  | None -> None
  | Some s ->
    let rec children i acc =
      if i = n then Some (List.rev acc)
      else begin
        match best_in_window ~rel ~w:(Dag.weight dag i) ~window:(deadline -. t0) with
        | None -> None
        | Some d -> children (i + 1) (d :: acc)
      end
    in
    (match children 1 [] with
    | None -> None
    | Some ds ->
      let energy =
        List.fold_left (fun acc (d : decision) -> acc +. d.energy) s.energy ds
      in
      Some (energy, s, ds))

let solve ?(grid = 512) ~rel ~deadline dag =
  check_fork dag;
  let w0 = Dag.weight dag 0 in
  let t0_min = w0 /. rel.Rel.fmax in
  let t0_max = deadline in
  if t0_min >= t0_max then None
  else begin
    let cost t0 = match total_cost ~rel ~deadline dag t0 with Some (e, _, _) -> e | None -> infinity in
    (* coarse scan *)
    let best_t = ref nan and best_e = ref infinity in
    for k = 0 to grid do
      let t0 = t0_min +. ((t0_max -. t0_min) *. float_of_int k /. float_of_int grid) in
      let e = cost t0 in
      if e < !best_e then begin
        best_e := e;
        best_t := t0
      end
    done;
    if !best_e = infinity then None
    else begin
      (* golden refinement around the best cell *)
      let cell = (t0_max -. t0_min) /. float_of_int grid in
      let lo = Float.max t0_min (!best_t -. cell) in
      let hi = Float.min t0_max (!best_t +. cell) in
      let t_star = Es_numopt.Scalar.golden_min ?max_iters:None ~tol:1e-12 ~f:cost ~lo ~hi in
      let t_star = if cost t_star <= !best_e then t_star else !best_t in
      match total_cost ~rel ~deadline dag t_star with
      | None -> None
      | Some (energy, s, ds) ->
        let mapping = Mapping.one_task_per_proc dag in
        let decisions = Array.of_list (s :: ds) in
        let executions =
          Array.init (Dag.n dag) (fun i ->
              let w = Dag.weight dag i in
              let d = decisions.(i) in
              let part = { Schedule.speed = d.speed; time = w /. d.speed } in
              if d.reexec then [ [ part ]; [ part ] ] else [ [ part ] ])
        in
        let schedule = Schedule.make mapping ~executions in
        Some
          {
            schedule;
            energy;
            reexecuted = Array.map (fun d -> d.reexec) decisions;
            source_window = t_star;
          }
    end
  end
