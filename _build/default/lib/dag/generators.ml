module Rng = Es_util.Rng

type r = Rng.t

let chain rng ~n ~wlo ~whi =
  assert (n >= 1);
  let weights = Rng.sample_weights rng ~n ~lo:wlo ~hi:whi in
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  Dag.make ?labels:None ~weights ~edges

let fork rng ~n ~wlo ~whi =
  assert (n >= 1);
  let weights = Rng.sample_weights rng ~n:(n + 1) ~lo:wlo ~hi:whi in
  let edges = List.init n (fun i -> (0, i + 1)) in
  Dag.make ?labels:None ~weights ~edges

let join rng ~n ~wlo ~whi =
  assert (n >= 1);
  let weights = Rng.sample_weights rng ~n:(n + 1) ~lo:wlo ~hi:whi in
  let edges = List.init n (fun i -> (i, n)) in
  Dag.make ?labels:None ~weights ~edges

let fork_join rng ~n ~wlo ~whi =
  assert (n >= 1);
  let weights = Rng.sample_weights rng ~n:(n + 2) ~lo:wlo ~hi:whi in
  let edges =
    List.init n (fun i -> (0, i + 1)) @ List.init n (fun i -> (i + 1, n + 1))
  in
  Dag.make ?labels:None ~weights ~edges

let random_sp rng ~n ~wlo ~whi =
  assert (n >= 1);
  let rec build n =
    if n = 1 then Sp.leaf (Rng.uniform_in rng wlo whi)
    else begin
      let left = 1 + Rng.int rng (n - 1) in
      let a = build left and b = build (n - left) in
      if Rng.bool rng then Sp.Series (a, b) else Sp.Parallel (a, b)
    end
  in
  build n

let random_layered rng ~layers ~width ~density ~wlo ~whi =
  assert (layers >= 1 && width >= 1);
  let sizes = Array.init layers (fun _ -> 1 + Rng.int rng width) in
  let offsets = Array.make layers 0 in
  let total = ref 0 in
  Array.iteri
    (fun l s ->
      offsets.(l) <- !total;
      total := !total + s)
    sizes;
  let weights = Rng.sample_weights rng ~n:!total ~lo:wlo ~hi:whi in
  let edges = ref [] in
  for l = 0 to layers - 2 do
    for a = 0 to sizes.(l) - 1 do
      for b = 0 to sizes.(l + 1) - 1 do
        if Rng.bernoulli rng density then
          edges := (offsets.(l) + a, offsets.(l + 1) + b) :: !edges
      done
    done;
    (* guarantee every task of layer l+1 has a predecessor *)
    for b = 0 to sizes.(l + 1) - 1 do
      let dst = offsets.(l + 1) + b in
      if not (List.exists (fun (_, j) -> j = dst) !edges) then begin
        let a = Rng.int rng sizes.(l) in
        edges := (offsets.(l) + a, dst) :: !edges
      end
    done
  done;
  Dag.make ?labels:None ~weights ~edges:!edges

let random_dag rng ~n ~p ~wlo ~whi =
  let weights = Rng.sample_weights rng ~n ~lo:wlo ~hi:whi in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.bernoulli rng p then edges := (i, j) :: !edges
    done
  done;
  Dag.make ?labels:None ~weights ~edges:!edges

let out_tree rng ~n ~max_children ~wlo ~whi =
  assert (n >= 1 && max_children >= 1);
  let weights = Rng.sample_weights rng ~n ~lo:wlo ~hi:whi in
  let arity = Array.make n 0 in
  let edges = ref [] in
  for i = 1 to n - 1 do
    (* candidate parents: earlier tasks with spare arity *)
    let candidates =
      List.filter (fun j -> arity.(j) < max_children) (List.init i Fun.id)
    in
    let parent =
      match candidates with
      | [] -> i - 1 (* arity cap everywhere full: chain onto the previous task *)
      | l -> Rng.choice rng (Array.of_list l)
    in
    arity.(parent) <- arity.(parent) + 1;
    edges := (parent, i) :: !edges
  done;
  Dag.make ?labels:None ~weights ~edges:!edges

let in_tree rng ~n ~max_children ~wlo ~whi =
  Dag.reverse (out_tree rng ~n ~max_children ~wlo ~whi)

(* Tiled right-looking LU; tasks indexed by (kind, step, coordinates). *)
let lu ~n =
  assert (n >= 1);
  let ids = Hashtbl.create 64 in
  let weights = ref [] in
  let count = ref 0 in
  let task key w =
    match Hashtbl.find_opt ids key with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add ids key id;
      weights := w :: !weights;
      id
  in
  let edges = ref [] in
  let edge a b = edges := (a, b) :: !edges in
  (* key encoding: (`Pivot k | `Row (k,j) | `Col (k,i) | `Upd (k,i,j)) *)
  for k = 0 to n - 1 do
    let pivot = task (`Pivot k) (1. /. 3.) in
    if k > 0 then edge (task (`Upd (k - 1, k, k)) 1.) pivot;
    for j = k + 1 to n - 1 do
      let row = task (`Row (k, j)) 0.5 in
      edge pivot row;
      if k > 0 then edge (task (`Upd (k - 1, k, j)) 1.) row
    done;
    for i = k + 1 to n - 1 do
      let col = task (`Col (k, i)) 0.5 in
      edge pivot col;
      if k > 0 then edge (task (`Upd (k - 1, i, k)) 1.) col
    done;
    for i = k + 1 to n - 1 do
      for j = k + 1 to n - 1 do
        let upd = task (`Upd (k, i, j)) 1. in
        edge (task (`Row (k, j)) 0.5) upd;
        edge (task (`Col (k, i)) 0.5) upd;
        if k > 0 then edge (task (`Upd (k - 1, i, j)) 1.) upd
      done
    done
  done;
  Dag.make ?labels:None ~weights:(Array.of_list (List.rev !weights)) ~edges:!edges

let fft ~levels =
  assert (levels >= 1);
  let lanes = 1 lsl levels in
  let id stage lane = (stage * lanes) + lane in
  let nn = (levels + 1) * lanes in
  let weights = Array.make nn 1. in
  let edges = ref [] in
  for stage = 0 to levels - 1 do
    let stride = 1 lsl stage in
    for lane = 0 to lanes - 1 do
      let partner = lane lxor stride in
      edges := (id stage lane, id (stage + 1) lane) :: !edges;
      edges := (id stage partner, id (stage + 1) lane) :: !edges
    done
  done;
  Dag.make ?labels:None ~weights ~edges:!edges

let stencil ~rows ~cols =
  assert (rows >= 1 && cols >= 1);
  let id i j = (i * cols) + j in
  let weights = Array.make (rows * cols) 1. in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if i > 0 then edges := (id (i - 1) j, id i j) :: !edges;
      if j > 0 then edges := (id i (j - 1), id i j) :: !edges
    done
  done;
  Dag.make ?labels:None ~weights ~edges:!edges

(* Tiled Cholesky (left-looking on the lower triangle). *)
let cholesky ~n =
  assert (n >= 1);
  let ids = Hashtbl.create 64 in
  let weights = ref [] in
  let count = ref 0 in
  let task key w =
    match Hashtbl.find_opt ids key with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add ids key id;
      weights := w :: !weights;
      id
  in
  let edges = ref [] in
  let edge a b = edges := (a, b) :: !edges in
  for k = 0 to n - 1 do
    let potrf = task (`Potrf k) (1. /. 3.) in
    if k > 0 then edge (task (`Syrk (k - 1, k)) 0.5) potrf;
    for i = k + 1 to n - 1 do
      let trsm = task (`Trsm (k, i)) 1. in
      edge potrf trsm;
      if k > 0 then edge (task (`Gemm (k - 1, i, k)) 1.) trsm
    done;
    for i = k + 1 to n - 1 do
      (* diagonal update of tile (i,i) by column k *)
      let syrk = task (`Syrk (k, i)) 0.5 in
      edge (task (`Trsm (k, i)) 1.) syrk;
      if k > 0 then edge (task (`Syrk (k - 1, i)) 0.5) syrk;
      (* off-diagonal updates of tiles (i,j), j < i, by column k *)
      for j = k + 1 to i - 1 do
        let gemm = task (`Gemm (k, i, j)) 1. in
        edge (task (`Trsm (k, i)) 1.) gemm;
        edge (task (`Trsm (k, j)) 1.) gemm;
        if k > 0 then edge (task (`Gemm (k - 1, i, j)) 1.) gemm
      done
    done
  done;
  Dag.make ?labels:None ~weights:(Array.of_list (List.rev !weights)) ~edges:!edges

let pipeline rng ~stages ~width ~wlo ~whi =
  assert (stages >= 1 && width >= 1);
  (* per stage: 1 source + width parallel + 1 sink *)
  let per = width + 2 in
  let n = stages * per in
  let weights = Rng.sample_weights rng ~n ~lo:wlo ~hi:whi in
  let edges = ref [] in
  for s = 0 to stages - 1 do
    let base = s * per in
    let src = base and sink = base + per - 1 in
    for k = 1 to width do
      edges := (src, base + k) :: (base + k, sink) :: !edges
    done;
    if s > 0 then edges := (base - 1, src) :: !edges
  done;
  Dag.make ?labels:None ~weights ~edges:!edges
