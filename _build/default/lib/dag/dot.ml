let of_dag ?(name = "dag") dag =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=ellipse];\n";
  for i = 0 to Dag.n dag - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  t%d [label=\"%s\\nw=%g\"];\n" i (Dag.label dag i)
         (Dag.weight dag i))
  done;
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "  t%d -> t%d;\n" i j))
    (Dag.edges dag);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name dag ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_dag ?name dag))
