lib/dag/sp.ml: Array Dag Format Fun Hashtbl Int List Set
