lib/dag/generators.mli: Dag Es_util Sp
