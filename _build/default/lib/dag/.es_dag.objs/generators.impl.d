lib/dag/generators.ml: Array Dag Es_util Fun Hashtbl List Sp
