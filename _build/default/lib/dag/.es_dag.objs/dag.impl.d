lib/dag/dag.ml: Array Es_util Float Format Fun Hashtbl Int List Printf Set String
