type params = {
  lambda0 : float;
  sensitivity : float;
  fmin : float;
  fmax : float;
  frel : float;
}

let make ?(lambda0 = 1e-5) ?(sensitivity = 3.) ?frel ~fmin ~fmax () =
  if not (0. < fmin && fmin <= fmax) then invalid_arg "Rel.make: need 0 < fmin <= fmax";
  if lambda0 < 0. then invalid_arg "Rel.make: need lambda0 >= 0";
  if sensitivity < 0. then invalid_arg "Rel.make: need sensitivity >= 0";
  let frel = Option.value frel ~default:fmax in
  if frel < fmin || frel > fmax then invalid_arg "Rel.make: frel outside [fmin, fmax]";
  { lambda0; sensitivity; fmin; fmax; frel }

let default = make ~fmin:(1. /. 3.) ~fmax:1. ()

let rate p ~f =
  let span = p.fmax -. p.fmin in
  let exponent = if span <= 0. then 0. else p.sensitivity *. (p.fmax -. f) /. span in
  p.lambda0 *. exp exponent

let failure_prob p ~f ~w = rate p ~f *. (w /. f)
let reliability p ~f ~w = Es_util.Futil.clamp ~lo:0. ~hi:1. (1. -. failure_prob p ~f ~w)
let target_failure p ~w = failure_prob p ~f:p.frel ~w
let reexec_failure p ~f1 ~f2 ~w = failure_prob p ~f:f1 ~w *. failure_prob p ~f:f2 ~w

let meets_single ?(tol = 1e-12) p ~f ~w =
  failure_prob p ~f ~w <= target_failure p ~w +. tol

let meets_reexec ?(tol = 1e-12) p ~f1 ~f2 ~w =
  reexec_failure p ~f1 ~f2 ~w <= target_failure p ~w *. (1. +. 1e-9) +. tol

let min_reexec_speed p ~w =
  let target = target_failure p ~w in
  let eps f = reexec_failure p ~f1:f ~f2:f ~w in
  if eps p.fmax > target then None
  else if eps p.fmin <= target then Some p.fmin
  else begin
    (* ε(f)² − target is strictly decreasing in f with a sign change
       on [fmin, fmax]. *)
    let f =
      Es_numopt.Scalar.bisect ?max_iters:None ~tol:1e-14
        ~f:(fun f -> eps f -. target)
        ~lo:p.fmin ~hi:p.fmax
    in
    Some f
  end

let vdd_failure p ~parts =
  Es_util.Futil.sum_by (fun (f, t) -> rate p ~f *. t) parts

let pp ppf p =
  Format.fprintf ppf "lambda0=%g d=%g f in [%g, %g] frel=%g" p.lambda0 p.sensitivity
    p.fmin p.fmax p.frel
