lib/sim/trace.mli: Dag Es_util Rel Schedule
