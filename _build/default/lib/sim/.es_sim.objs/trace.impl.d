lib/sim/trace.ml: Array Buffer Bytes Char Dag Es_util Float List Mapping Printf Rel Schedule String
