lib/sim/sim.ml: Array Dag Es_util List Mapping Rel Schedule
