lib/sim/sim.mli: Dag Es_util Rel Schedule
