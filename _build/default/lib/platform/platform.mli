(** Execution platform: [p] identical processors sharing one speed
    model.  The paper's platforms are homogeneous; heterogeneity never
    appears, so a platform is just a processor count and a model. *)

type t = { p : int; model : Speed.t }

val make : p:int -> model:Speed.t -> t
(** @raise Invalid_argument unless [p >= 1]. *)

val p : t -> int
val model : t -> Speed.t

val pp : Format.formatter -> t -> unit
