type t = { p : int; model : Speed.t }

let make ~p ~model =
  if p < 1 then invalid_arg "Platform.make: need p >= 1";
  { p; model }

let p t = t.p
let model t = t.model
let pp ppf t = Format.fprintf ppf "%d processors, %a" t.p Speed.pp t.model
