lib/platform/speed.ml: Array Float Format List Option Printf String
