lib/platform/speed.mli: Format
