lib/platform/platform.mli: Format Speed
