lib/platform/platform.ml: Format Speed
