lib/util/table.ml: Array Buffer Futil List String
