lib/util/table.mli:
