lib/util/stats.mli:
