lib/util/futil.ml: Array Float List Printf
