lib/util/futil.mli:
