lib/util/rng.mli:
