(* xoshiro256** with splitmix64 seeding.  Reference: Blackman &
   Vigna, "Scrambled linear pseudorandom number generators", 2018. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

(* Uniform int in [0, n) by rejection on the top 62 bits, avoiding
   modulo bias. *)
let int t n =
  assert (n > 0);
  let mask = 0x3FFFFFFFFFFFFFFF in
  let bound = mask - (mask mod n) in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    if v >= bound then draw () else v mod n
  in
  draw ()

(* 53-bit mantissa construction of a uniform float in [0, 1). *)
let unit_float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. 0x1.0p-53

let float t x = unit_float t *. x

let uniform_in t lo hi =
  assert (lo <= hi);
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let gaussian ?(mu = 0.) ?(sigma = 1.) t =
  let rec nonzero () =
    let u = unit_float t in
    if u = 0. then nonzero () else u
  in
  let u1 = nonzero () and u2 = unit_float t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let exponential t ~rate =
  assert (rate > 0.);
  let rec nonzero () =
    let u = unit_float t in
    if u = 0. then nonzero () else u
  in
  -.log (nonzero ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sample_weights t ~n ~lo ~hi = Array.init n (fun _ -> uniform_in t lo hi)
