(** Small floating-point helpers shared across the numeric code. *)

val approx_equal : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx_equal a b] holds when [a] and [b] agree within the relative
    tolerance [rel] (default [1e-9]) or the absolute tolerance [abs]
    (default [1e-12]). *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a value into [\[lo, hi\]].  Requires [lo <= hi]. *)

val cube : float -> float
(** [cube x = x *. x *. x]. *)

val square : float -> float
(** [square x = x *. x]. *)

val cbrt : float -> float
(** Real cube root, defined for all signs. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val sum_by : ('a -> float) -> 'a list -> float
(** Compensated sum of [f x] over the list. *)

val is_finite : float -> bool
(** Neither NaN nor infinite. *)

val fmt_g : float -> string
(** Short ["%.6g"] rendering used in tables. *)
