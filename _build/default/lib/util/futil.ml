let approx_equal ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let cube x = x *. x *. x
let square x = x *. x
let cbrt x = Float.cbrt x

let sum xs =
  let acc = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !acc +. y in
      comp := t -. !acc -. y;
      acc := t)
    xs;
  !acc

let sum_by f xs = sum (Array.of_list (List.map f xs))
let is_finite x = Float.is_finite x
let fmt_g x = Printf.sprintf "%.6g" x
