(** Descriptive statistics over float samples, used by the experiment
    harness to summarise repeated runs. *)

val mean : float array -> float
(** Arithmetic mean.  Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (denominator [n - 1]); [0.] when the
    sample has fewer than two points. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min : float array -> float
(** Smallest sample.  Requires a non-empty array. *)

val max : float array -> float
(** Largest sample.  Requires a non-empty array. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0, 1\]], linear interpolation between
    order statistics.  Requires a non-empty array. *)

val median : float array -> float
(** [quantile xs 0.5]. *)

val geometric_mean : float array -> float
(** Geometric mean; all samples must be positive.  Used for ratio
    aggregation across heterogeneous instances. *)

val summary : float array -> string
(** Compact human-readable ["mean ± std [min, max]"] rendering. *)

type online
(** Numerically stable streaming accumulator (Welford). *)

val online_create : unit -> online
val online_add : online -> float -> unit
val online_count : online -> int
val online_mean : online -> float
val online_stddev : online -> float
