(** Deterministic pseudo-random number generation.

    All stochastic components of the library (workload generators, the
    fault-injection simulator, randomized experiments) draw from this
    module rather than from [Stdlib.Random], so that every experiment is
    reproducible from a single integer seed.  The generator is
    xoshiro256** seeded through splitmix64, which is the standard
    seeding procedure recommended by the xoshiro authors. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting at the current state
    of [t]. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  The two
    streams are statistically independent; use this to give each
    experiment repetition its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform in [\[lo, hi)].  Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal deviate via Box–Muller.  Defaults: [mu = 0.], [sigma = 1.]. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1/rate]).  Used by
    the fault injector. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element.  Requires a non-empty array. *)

val sample_weights : t -> n:int -> lo:float -> hi:float -> float array
(** [sample_weights t ~n ~lo ~hi] draws [n] independent task weights
    uniform in [\[lo, hi)]. *)
