lib/lp/problem.mli:
