lib/lp/simplex.mli:
