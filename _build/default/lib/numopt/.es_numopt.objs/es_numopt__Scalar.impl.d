lib/numopt/scalar.ml: Float
