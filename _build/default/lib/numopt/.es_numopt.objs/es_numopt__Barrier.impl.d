lib/numopt/barrier.ml: Array Es_linalg
