lib/numopt/scalar.mli:
