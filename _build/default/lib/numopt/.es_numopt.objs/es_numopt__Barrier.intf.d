lib/numopt/barrier.mli: Es_linalg
