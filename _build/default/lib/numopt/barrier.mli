(** Log-barrier interior-point method for linearly constrained convex
    programs.

    Solves [minimise f(x) subject to A x ≤ b] for smooth convex [f]
    with user-supplied gradient and Hessian.  This is the
    "geometric programming" engine the paper invokes (Section III,
    citing Boyd & Vandenberghe §4.5) for BI-CRIT CONTINUOUS on general
    DAGs: the energy objective [Σ wᵢ³/dᵢ²] is convex in the durations
    and every precedence/deadline constraint is linear in the start
    times and durations.

    The method is the standard path-following scheme: minimise
    [t·f(x) − Σ log(bᵢ − aᵢx)] by damped Newton for increasing [t]
    until [m/t] (the duality-gap bound) drops below [tol]. *)

type objective = {
  f : Es_linalg.Vec.t -> float;  (** objective value *)
  grad : Es_linalg.Vec.t -> Es_linalg.Vec.t;  (** gradient *)
  hess : Es_linalg.Vec.t -> Es_linalg.Mat.t;  (** Hessian (dense) *)
}

exception Not_strictly_feasible
(** Raised when the supplied starting point violates [A x < b]. *)

val minimize :
  ?tol:float ->
  ?t0:float ->
  ?mu:float ->
  ?newton_tol:float ->
  ?max_newton:int ->
  objective ->
  a:Es_linalg.Mat.t ->
  b:Es_linalg.Vec.t ->
  x0:Es_linalg.Vec.t ->
  Es_linalg.Vec.t
(** [minimize obj ~a ~b ~x0] returns an approximate minimiser.  [x0]
    must satisfy [a x0 < b] strictly.  [tol] is the target duality gap
    (default [1e-8]); [mu] the barrier growth factor (default [15.]);
    [t0] the initial barrier weight (default [1.]).

    @raise Not_strictly_feasible if [x0] is on or outside the
    boundary. *)

val feasible_start :
  a:Es_linalg.Mat.t -> b:Es_linalg.Vec.t -> x0:Es_linalg.Vec.t -> bool
(** [feasible_start ~a ~b ~x0] checks strict feasibility, as required
    by {!minimize}. *)
