(* Bechamel benchmarks: one Test.make per experiment table (E1..E12),
   measuring the cost of the algorithm that regenerates it.  Run with:
   dune exec bench/main.exe *)

open Bechamel
open Toolkit

let fmin = 0.2
let fmax = 1.0
let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]
let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 ()

(* Fixed instances, prepared once so staged closures only measure the
   algorithms themselves. *)

let fork_dag =
  let rng = Es_util.Rng.create ~seed:1 in
  Generators.fork rng ~n:16 ~wlo:0.5 ~whi:3.

let fork_mapping = Mapping.one_task_per_proc fork_dag
let fork_deadline = 2. *. List_sched.makespan_at_speed fork_mapping ~f:fmax

let sp =
  let rng = Es_util.Rng.create ~seed:2 in
  Generators.random_sp rng ~n:24 ~wlo:0.5 ~whi:3.

let layered_mapping, layered_deadline =
  let rng = Es_util.Rng.create ~seed:3 in
  let dag = Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
  (m, 1.6 *. List_sched.makespan_at_speed m ~f:fmax)

let small_mapping, small_deadline =
  let rng = Es_util.Rng.create ~seed:4 in
  let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  (m, 1.5 *. List_sched.makespan_at_speed m ~f:fmax)

let chain_mapping, chain_deadline =
  let rng = Es_util.Rng.create ~seed:5 in
  let dag = Generators.chain rng ~n:10 ~wlo:0.5 ~whi:3. in
  let m = Mapping.single_processor dag in
  (m, 2.5 *. Dag.total_weight dag /. fmax)

let vdd_chain_mapping, vdd_chain_deadline =
  let rng = Es_util.Rng.create ~seed:6 in
  let dag = Generators.chain rng ~n:6 ~wlo:0.5 ~whi:2. in
  let m = Mapping.single_processor dag in
  (m, 2. *. Dag.total_weight dag /. fmax)

let repl_weights =
  let rng = Es_util.Rng.create ~seed:7 in
  Es_util.Rng.sample_weights rng ~n:8 ~lo:0.5 ~hi:3.

let repl_deadline = 2. *. Es_util.Futil.sum repl_weights /. fmax

let sim_schedule =
  let speeds = Array.make (Dag.n (Mapping.dag chain_mapping)) 0.5 in
  Schedule.of_speeds chain_mapping ~speeds

let bounds m =
  let n = Dag.n (Mapping.dag m) in
  (Array.make n fmin, Array.make n fmax)

let staged_exn name f =
  Test.make ~name
    (Staged.stage (fun () -> match f () with Some _ -> () | None -> failwith name))

let tests =
  [
    (* E1: fork closed form *)
    Test.make ~name:"e1-fork-closed-form"
      (Staged.stage (fun () ->
           let root = Dag.weight fork_dag 0 in
           let children = Array.init 16 (fun i -> Dag.weight fork_dag (i + 1)) in
           ignore
             (Bicrit_continuous.fork_speeds ~root ~children ~deadline:fork_deadline ~fmax)));
    (* E1/E2: barrier convex solver *)
    staged_exn "e1-barrier-solver" (fun () ->
        let lo, hi = bounds fork_mapping in
        Bicrit_continuous.solve_general ~lo ~hi ~deadline:fork_deadline fork_mapping);
    (* E2: SP recursion *)
    Test.make ~name:"e2-sp-recursion"
      (Staged.stage (fun () ->
           ignore (Bicrit_continuous.sp_speeds sp ~deadline:(2. *. Sp.total_weight sp))));
    (* E3: VDD-HOPPING LP *)
    staged_exn "e3-vdd-lp" (fun () ->
        Bicrit_vdd.solve ~deadline:layered_deadline ~levels layered_mapping);
    (* E4: incremental approximation *)
    staged_exn "e4-incremental-approx" (fun () ->
        Bicrit_incremental.approximate ~deadline:layered_deadline ~fmin ~fmax ~delta:0.1
          layered_mapping);
    (* E5: discrete exact B&B *)
    staged_exn "e5-discrete-bb" (fun () ->
        Bicrit_discrete.solve_exact ?node_limit:None ~deadline:small_deadline ~levels
          small_mapping);
    (* E6: tri-crit chain greedy *)
    staged_exn "e6-tricrit-chain-greedy" (fun () ->
        Tricrit_chain.solve_greedy ~rel ~deadline:chain_deadline chain_mapping);
    (* E7: tri-crit fork polynomial algorithm *)
    staged_exn "e7-tricrit-fork-poly" (fun () ->
        Tricrit_fork.solve ?grid:None ~rel ~deadline:fork_deadline fork_dag);
    (* E8: best-of heuristics *)
    staged_exn "e8-heuristics-best-of" (fun () ->
        Heuristics.best_of ~rel ~deadline:layered_deadline layered_mapping);
    (* E9: tri-crit vdd fixed-subset LP *)
    staged_exn "e9-tricrit-vdd-lp" (fun () ->
        let n = Dag.n (Mapping.dag vdd_chain_mapping) in
        Tricrit_vdd.solve_subset ~rel ~deadline:vdd_chain_deadline ~levels
          vdd_chain_mapping
          ~subset:(Array.init n (fun i -> i mod 2 = 0)));
    (* E10: fault-injection simulator (1000 trials) *)
    Test.make ~name:"e10-sim-1000-trials"
      (Staged.stage (fun () ->
           ignore
             (Sim.monte_carlo (Es_util.Rng.create ~seed:8) ~rel ~trials:1000 sim_schedule)));
    (* E11: list scheduling *)
    Test.make ~name:"e11-list-scheduling"
      (Staged.stage
         (let rng = Es_util.Rng.create ~seed:9 in
          let dag =
            Generators.random_layered rng ~layers:6 ~width:5 ~density:0.4 ~wlo:1. ~whi:3.
          in
          fun () -> ignore (List_sched.schedule dag ~p:4 ~priority:List_sched.Bottom_level)));
    (* E12: replication greedy *)
    staged_exn "e12-replication-greedy" (fun () ->
        Replication.solve_greedy ~rel ~deadline:repl_deadline ~weights:repl_weights);
    (* E13: exact general-DAG tri-crit (2^n barrier solves, small n) *)
    staged_exn "e13-tricrit-exact-n6" (fun () ->
        Tricrit_exact.solve ?max_n:None ~rel ~deadline:vdd_chain_deadline
          vdd_chain_mapping);
    (* E14: checkpointing segmentation *)
    staged_exn "e14-checkpointing" (fun () ->
        (* worst case re-runs every segment: needs more than 2x slack *)
        Checkpointing.solve ?speed_grid:None ~rel ~checkpoint_work:0.2
          ~deadline:(2. *. repl_deadline) ~weights:repl_weights);
    (* E15: static-power closed form *)
    staged_exn "e15-power-ablation" (fun () ->
        Power.ablation_penalty ~static:0.25 ~weights:repl_weights
          ~deadline:repl_deadline ~fmin:0.05 ~fmax);
    (* chain knapsack DP *)
    staged_exn "e6-tricrit-chain-dp" (fun () ->
        Tricrit_chain.solve_dp ?buckets:None ~rel ~deadline:chain_deadline chain_mapping);
  ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"energy_sched" tests) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let () =
  let results = benchmark () in
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "no results"
  | Some tbl ->
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
    let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
    let table = Es_util.Table.create ~columns:[ "benchmark"; "time/run" ] in
    List.iter
      (fun (name, ols) ->
        let time =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) ->
            if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
          | _ -> "n/a"
        in
        Es_util.Table.add_row table [ name; time ])
      rows;
    Es_util.Table.print
      ~caption:"Per-run cost of each experiment's core algorithm (OLS time estimate)"
      table
