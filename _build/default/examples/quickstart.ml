(* Quickstart: the smallest end-to-end use of the library.

   Build a task graph, map it onto processors with critical-path list
   scheduling, minimise energy under a deadline (BI-CRIT, CONTINUOUS
   model), and inspect the resulting schedule.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A diamond-shaped application: T0 fans out to T1/T2, which join
     into T3.  Weights are computation requirements. *)
  let dag =
    Dag.make ?labels:None ~weights:[| 2.; 3.; 1.5; 2.5 |]
      ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
  in

  (* Map onto 2 identical processors, critical path first. *)
  let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  Printf.printf "Mapping:\n";
  Format.printf "%a@." Mapping.pp mapping;

  (* The tightest possible deadline is the makespan at full speed. *)
  let dmin = List_sched.makespan_at_speed mapping ~f:1.0 in
  let deadline = 1.5 *. dmin in
  Printf.printf "Dmin = %.3f, working with D = %.3f\n\n" dmin deadline;

  (* BI-CRIT: minimise energy subject to the deadline. *)
  match Bicrit_continuous.solve ~deadline ~fmin:0.2 ~fmax:1.0 mapping with
  | None -> print_endline "No schedule fits this deadline."
  | Some sched ->
    Printf.printf "Optimal energy: %.5f (vs %.5f at full speed)\n"
      (Schedule.energy sched)
      (Schedule.energy (Schedule.uniform mapping ~speed:1.0));
    Printf.printf "Worst-case makespan: %.5f <= %.5f\n\n" (Schedule.makespan sched)
      deadline;
    Printf.printf "Per-task speeds:\n";
    Format.printf "%a@." Schedule.pp sched;
    (* Always sanity-check against the validator. *)
    let ok =
      Validate.is_feasible ~deadline ~model:(Speed.continuous ~fmin:0.2 ~fmax:1.0) sched
    in
    Printf.printf "validator: %s\n" (if ok then "OK" else "VIOLATION");
    Gantt.print ?width:None ~deadline sched
