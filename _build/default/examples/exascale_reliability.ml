(* The paper's motivating scenario (Section I): on massively parallel
   platforms, blindly slowing processors down to save energy degrades
   reliability, because transient-fault rates grow as voltage drops.
   Re-execution buys the reliability back while still allowing slow,
   cheap executions.

   This example compares three policies on a wide workload with a
   measurable fault rate, and fault-injects each schedule:

     1. "fast":     everything once at fmax   — reliable but expensive;
     2. "naive":    BI-CRIT optimal slowdown  — cheap but *fails* the
                    reliability threshold (what Section I warns about);
     3. "tri-crit": best-of-two heuristics    — cheap *and* reliable,
                    by re-executing the tasks that can afford it.

   Run with:  dune exec examples/exascale_reliability.exe *)

let fmin = 0.2
let fmax = 1.0
let frel = 0.8

let () =
  let rng = Es_util.Rng.create ~seed:11 in
  (* a bag of parallel pipelines: fork-join of 12 branches *)
  let dag = Generators.fork_join rng ~n:12 ~wlo:1. ~whi:4. in
  let mapping = List_sched.schedule dag ~p:12 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  let deadline = 2.2 *. dmin in
  (* fault rate large enough to observe failures in 20k runs *)
  let rel = Rel.make ~lambda0:0.002 ~sensitivity:3. ~fmin ~fmax ~frel () in
  Printf.printf
    "Workload: fork-join, %d tasks on 12 processors; D = %.3f (2.2 x Dmin)\n\
     Reliability threshold: R_i(f_rel = %.1f); fault rate at fmax = %g\n\n"
    (Dag.n dag) deadline frel rel.Rel.lambda0;

  let schedules = ref [] in
  (* 1. everything at fmax *)
  schedules := ("fast (all fmax)", Schedule.uniform mapping ~speed:fmax) :: !schedules;
  (* 2. naive BI-CRIT slowdown, ignoring reliability *)
  (match Bicrit_continuous.solve ~deadline ~fmin ~fmax mapping with
  | Some s -> schedules := ("naive DVFS (bi-crit)", s) :: !schedules
  | None -> ());
  (* 3. TRI-CRIT with re-execution *)
  (match Heuristics.best_of ~rel ~deadline mapping with
  | Some (sol, who) ->
    let name =
      Printf.sprintf "tri-crit (%s)"
        (Heuristics.winner_name who)
    in
    schedules := (name, sol.Heuristics.schedule) :: !schedules
  | None -> ());

  let table =
    Es_util.Table.create
      ~columns:
        [ "policy"; "energy"; "meets R threshold"; "sim success"; "mean realised E" ]
  in
  List.iter
    (fun (name, sched) ->
      let meets =
        Validate.check ~rel ~model:(Speed.continuous ~fmin ~fmax) sched
        |> List.for_all (function Validate.Reliability_violated _ -> false | _ -> true)
      in
      let report =
        Sim.monte_carlo (Es_util.Rng.create ~seed:99) ~rel ~trials:20_000 sched
      in
      Es_util.Table.add_row table
        [
          name;
          Printf.sprintf "%.4f" (Schedule.energy sched);
          (if meets then "yes" else "NO");
          Printf.sprintf "%.4f" report.Sim.success_rate;
          Printf.sprintf "%.4f" report.Sim.mean_realised_energy;
        ])
    (List.rev !schedules);
  Es_util.Table.print
    ~caption:
      "Naive DVFS saves energy but violates the reliability constraint;\n\
       re-execution recovers reliability at a fraction of the fast policy's energy"
    table
