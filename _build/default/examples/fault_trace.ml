(* Watching re-execution absorb faults, run by run.

   The paper's worst case charges both executions of every re-executed
   task; a real run only pays for the second attempt when the first one
   fails.  This example builds a TRI-CRIT schedule under an aggressive
   fault rate and replays a few runs with the trace recorder, printing
   the realised timeline of each: failed attempts appear as 'x', spare
   second attempts as '*'.

   Run with:  dune exec examples/fault_trace.exe *)

let () =
  let rng = Es_util.Rng.create ~seed:21 in
  let dag = Generators.chain rng ~n:6 ~wlo:1. ~whi:3. in
  let mapping = Mapping.single_processor dag in
  let deadline = 3.5 *. Dag.total_weight dag in
  (* a fault rate high enough that most runs see at least one failure *)
  let rel = Rel.make ~lambda0:0.005 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 () in
  match Tricrit_chain.solve_greedy ~rel ~deadline mapping with
  | None -> print_endline "infeasible"
  | Some sol ->
    let nre =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 sol.Tricrit_chain.reexecuted
    in
    Printf.printf
      "Chain of %d tasks, %d re-executed; worst-case makespan %.3f (D = %.3f)\n\
       worst-case energy %.4f\n\n"
      (Dag.n dag) nre
      (Schedule.makespan sol.Tricrit_chain.schedule)
      deadline sol.Tricrit_chain.energy;
    let sim_rng = Es_util.Rng.create ~seed:22 in
    for run = 1 to 4 do
      let t = Trace.run (Es_util.Rng.split sim_rng) ~rel sol.Tricrit_chain.schedule in
      Printf.printf "run %d: realised makespan %.3f, realised energy %.4f, %d attempts\n"
        run t.Trace.makespan t.Trace.energy (List.length t.Trace.events);
      print_string (Trace.render ?width:None sol.Tricrit_chain.schedule t);
      print_newline ()
    done;
    (* and the aggregate view *)
    let report =
      Sim.monte_carlo (Es_util.Rng.create ~seed:23) ~rel ~trials:20_000
        sol.Tricrit_chain.schedule
    in
    Printf.printf
      "over 20000 runs: success %.4f, mean realised energy %.4f (%.0f%% of worst case),\n\
       mean realised makespan %.3f (worst case %.3f)\n"
      report.Sim.success_rate report.Sim.mean_realised_energy
      (100. *. report.Sim.mean_realised_energy /. report.Sim.worst_case_energy)
      report.Sim.mean_realised_makespan report.Sim.worst_case_makespan
