examples/fault_trace.ml: Array Dag Es_util Generators List Mapping Printf Rel Schedule Sim Trace Tricrit_chain
