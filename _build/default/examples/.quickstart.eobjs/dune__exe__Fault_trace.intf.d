examples/fault_trace.mli:
