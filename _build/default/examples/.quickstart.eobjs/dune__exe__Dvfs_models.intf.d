examples/dvfs_models.mli:
