examples/legacy_pipeline.ml: Dag Dot Es_util Float Generators List List_sched Pareto Printf Rel
