examples/exascale_reliability.ml: Bicrit_continuous Dag Es_util Generators Heuristics List List_sched Printf Rel Schedule Sim Speed Validate
