examples/legacy_pipeline.mli:
