examples/quickstart.ml: Bicrit_continuous Dag Format Gantt List_sched Mapping Printf Schedule Speed Validate
