examples/quickstart.mli:
