examples/exascale_reliability.mli:
