examples/dvfs_models.ml: Bicrit_continuous Bicrit_discrete Bicrit_incremental Bicrit_vdd Dag Es_util Float Generators List List_sched Option Printf Schedule
