(* Comparing the four speed models of the paper on one application.

   The same mapped DAG is solved under CONTINUOUS (the theoretical
   ideal), VDD-HOPPING (mix two voltages inside a task — polynomial,
   Section IV), DISCRETE (one mode per task — NP-complete, solved
   exactly here by branch-and-bound) and INCREMENTAL (evenly spaced
   knob — approximated by round-up).  The energies illustrate the
   paper's ordering: continuous <= vdd-hopping <= discrete, with
   the incremental grid converging to continuous as δ shrinks.

   Run with:  dune exec examples/dvfs_models.exe *)

let fmin = 0.2
let fmax = 1.0
let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]

let () =
  let rng = Es_util.Rng.create ~seed:7 in
  let dag =
    Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3.
  in
  let mapping = List_sched.schedule dag ~p:3 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  let deadline = 1.6 *. dmin in
  Printf.printf "Application: %d tasks on 3 processors, D = 1.6 x Dmin = %.3f\n\n"
    (Dag.n dag) deadline;

  let table = Es_util.Table.create ~columns:[ "model"; "energy"; "vs continuous" ] in
  let continuous_energy = ref nan in
  let report name = function
    | None -> Es_util.Table.add_row table [ name; "infeasible"; "-" ]
    | Some sched ->
      let e = Schedule.energy sched in
      if Float.is_nan !continuous_energy then continuous_energy := e;
      Es_util.Table.add_row table
        [ name; Printf.sprintf "%.5f" e; Printf.sprintf "%.3fx" (e /. !continuous_energy) ]
  in
  report "continuous" (Bicrit_continuous.solve ~deadline ~fmin ~fmax mapping);
  report "vdd-hopping (LP)" (Bicrit_vdd.solve ~deadline ~levels mapping);
  report "discrete (exact B&B)"
    (Option.map
       (fun r -> r.Bicrit_discrete.schedule)
       (Bicrit_discrete.solve_exact ?node_limit:None ~deadline ~levels mapping));
  List.iter
    (fun delta ->
      report
        (Printf.sprintf "incremental d=%.2f" delta)
        (Bicrit_incremental.approximate ~deadline ~fmin ~fmax ~delta mapping))
    [ 0.2; 0.1; 0.05; 0.01 ];
  Es_util.Table.print
    ~caption:"Energy under the four speed models (same mapping, same deadline)" table
