(* Legacy-application scenario (Section II): the mapping is fixed —
   here produced once by critical-path list scheduling for a tiled LU
   factorisation task graph — and the only freedom left is the speed
   (and re-execution) of each task.  We sweep the deadline to expose
   the energy/makespan Pareto front, with and without the reliability
   constraint.

   Run with:  dune exec examples/legacy_pipeline.exe *)

let fmin = 0.2
let fmax = 1.0

let () =
  let dag = Generators.lu ~n:4 in
  let mapping = List_sched.schedule dag ~p:4 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:fmax in
  Printf.printf "Tiled LU (4x4 grid): %d tasks, %d edges, mapped on 4 processors\n"
    (Dag.n dag) (Dag.n_edges dag);
  Printf.printf "Dmin = %.3f\n\n" dmin;

  let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 () in
  let slacks = [ 1.05; 1.2; 1.5; 2.0; 2.5; 3.0; 4.0 ] in
  let deadlines = List.map (fun s -> s *. dmin) slacks in

  let bicrit = Pareto.bicrit_front ~fmin ~fmax ~deadlines mapping in
  let tricrit = Pareto.tricrit_front ~rel ~deadlines mapping in

  let table =
    Es_util.Table.create
      ~columns:[ "D/Dmin"; "E bi-crit"; "E tri-crit"; "#re-executed"; "reliability tax" ]
  in
  List.iter2
    (fun slack deadline ->
      let find front =
        List.find_opt (fun p -> Float.abs (p.Pareto.deadline -. deadline) < 1e-9) front
      in
      match (find bicrit, find tricrit) with
      | Some b, Some t ->
        Es_util.Table.add_row table
          [
            Printf.sprintf "%.2f" slack;
            Printf.sprintf "%.4f" b.Pareto.energy;
            Printf.sprintf "%.4f" t.Pareto.energy;
            string_of_int t.Pareto.n_reexecuted;
            Printf.sprintf "%.2fx" (t.Pareto.energy /. b.Pareto.energy);
          ]
      | _ -> Es_util.Table.add_row table [ Printf.sprintf "%.2f" slack; "-"; "-"; "-"; "-" ])
    slacks deadlines;
  Es_util.Table.print
    ~caption:
      "Energy/deadline front for a fixed legacy mapping.  The 'reliability tax'\n\
       (tri-crit vs unconstrained bi-crit) shrinks as re-execution engages."
    table;

  (* export the task graph for the curious *)
  Dot.to_file ?name:(Some "lu") dag ~path:"lu_dag.dot";
  print_endline "\nTask graph written to lu_dag.dot (render with: dot -Tpdf lu_dag.dot)"
