bin/esched.ml: Arg Array Bicrit_continuous Cmd Cmdliner Dag Dot Es_util Float Format Gantt Generators Heuristics List List_sched Pareto Printf Rel Schedule Sim Solver Speed Term Validate
