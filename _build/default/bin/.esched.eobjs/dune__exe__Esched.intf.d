bin/esched.mli:
