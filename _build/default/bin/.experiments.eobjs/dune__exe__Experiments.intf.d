bin/experiments.mli:
