(* Tests for the Eq. (1) reliability model: monotonicity, the
   re-execution algebra, the minimum re-execution speed, and the
   VDD-hopping failure accounting. *)

let rel = Rel.make ~lambda0:1e-4 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()

let check_float tol = Alcotest.(check (float tol))

let test_make_validates () =
  Alcotest.check_raises "frel range" (Invalid_argument "Rel.make: frel outside [fmin, fmax]")
    (fun () -> ignore (Rel.make ~frel:2. ~fmin:0.2 ~fmax:1. ()))

let test_rate_at_fmax () =
  (* at f = fmax the exponent vanishes: rate = lambda0 *)
  check_float 1e-15 "rate fmax" 1e-4 (Rel.rate rel ~f:1.0)

let test_rate_at_fmin () =
  (* at f = fmin the exponent is d: rate = lambda0·e^d *)
  check_float 1e-12 "rate fmin" (1e-4 *. exp 3.) (Rel.rate rel ~f:0.2)

let test_rate_decreasing_in_speed () =
  let prev = ref infinity in
  List.iter
    (fun f ->
      let r = Rel.rate rel ~f in
      Alcotest.(check bool) "decreasing" true (r < !prev);
      prev := r)
    [ 0.2; 0.4; 0.6; 0.8; 1.0 ]

let test_failure_prob_formula () =
  (* eps = rate(f)·w/f *)
  let f = 0.5 and w = 2. in
  check_float 1e-15 "eps" (Rel.rate rel ~f *. (w /. f)) (Rel.failure_prob rel ~f ~w)

let test_reliability_complement () =
  let f = 0.9 and w = 1. in
  check_float 1e-12 "R = 1 - eps" (1. -. Rel.failure_prob rel ~f ~w)
    (Rel.reliability rel ~f ~w)

let test_single_meets_iff_at_least_frel () =
  let w = 3. in
  Alcotest.(check bool) "at frel" true (Rel.meets_single ?tol:None rel ~f:0.8 ~w);
  Alcotest.(check bool) "above frel" true (Rel.meets_single ?tol:None rel ~f:0.95 ~w);
  Alcotest.(check bool) "below frel" false (Rel.meets_single ?tol:None rel ~f:0.5 ~w)

let test_reexec_product () =
  let w = 2. in
  check_float 1e-18 "product"
    (Rel.failure_prob rel ~f:0.4 ~w *. Rel.failure_prob rel ~f:0.6 ~w)
    (Rel.reexec_failure rel ~f1:0.4 ~f2:0.6 ~w)

let test_reexec_much_slower_ok () =
  (* re-execution admits speeds far below frel *)
  let w = 2. in
  match Rel.min_reexec_speed rel ~w with
  | None -> Alcotest.fail "must exist"
  | Some flo ->
    Alcotest.(check bool) "far below frel" true (flo < 0.8);
    Alcotest.(check bool) "meets at flo" true (Rel.meets_reexec ?tol:None rel ~f1:flo ~f2:flo ~w);
    (* and is tight: 2% below flo must violate (unless clamped at fmin) *)
    if flo > rel.Rel.fmin +. 1e-9 then
      Alcotest.(check bool) "tight" false
        (Rel.meets_reexec ?tol:None rel ~f1:(flo *. 0.98) ~f2:(flo *. 0.98) ~w)

let test_min_reexec_speed_root_property () =
  let w = 5. in
  match Rel.min_reexec_speed rel ~w with
  | None -> Alcotest.fail "must exist"
  | Some flo ->
    if flo > rel.Rel.fmin +. 1e-9 then begin
      let eps2 = Rel.reexec_failure rel ~f1:flo ~f2:flo ~w in
      let target = Rel.target_failure rel ~w in
      Alcotest.(check bool) "eps² = target at the root" true
        (Float.abs (eps2 -. target) < 1e-9 *. target)
    end

let test_min_reexec_speed_monotone_in_weight () =
  (* heavier tasks need faster re-execution *)
  let speeds =
    List.filter_map (fun w -> Rel.min_reexec_speed rel ~w) [ 0.5; 1.; 2.; 4.; 8. ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing speeds)

let test_vdd_failure_single_part_consistent () =
  let w = 2. and f = 0.5 in
  check_float 1e-15 "one part = failure_prob" (Rel.failure_prob rel ~f ~w)
    (Rel.vdd_failure rel ~parts:[ (f, w /. f) ])

let test_vdd_failure_additive () =
  let parts = [ (0.4, 1.); (0.8, 2.) ] in
  check_float 1e-15 "additive"
    (Rel.rate rel ~f:0.4 +. (2. *. Rel.rate rel ~f:0.8))
    (Rel.vdd_failure rel ~parts)

let test_zero_sensitivity_flat_rate () =
  let flat = Rel.make ~lambda0:1e-3 ~sensitivity:0. ~fmin:0.2 ~fmax:1. () in
  check_float 1e-15 "rate f=0.2" 1e-3 (Rel.rate flat ~f:0.2);
  check_float 1e-15 "rate f=1.0" 1e-3 (Rel.rate flat ~f:1.0)

let qcheck_reexec_floor_feasible =
  QCheck.Test.make ~name:"min_reexec_speed always meets the constraint" ~count:200
    QCheck.(pair (float_range 0.1 10.) (float_range 0.25 1.0))
    (fun (w, frel) ->
      let r = Rel.make ~lambda0:1e-4 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel () in
      match Rel.min_reexec_speed r ~w with
      | None -> true
      | Some flo -> Rel.meets_reexec ~tol:1e-9 r ~f1:flo ~f2:flo ~w)

let suite =
  ( "reliability",
    [
      Alcotest.test_case "make validates" `Quick test_make_validates;
      Alcotest.test_case "rate at fmax" `Quick test_rate_at_fmax;
      Alcotest.test_case "rate at fmin" `Quick test_rate_at_fmin;
      Alcotest.test_case "rate decreasing in speed" `Quick test_rate_decreasing_in_speed;
      Alcotest.test_case "failure prob formula" `Quick test_failure_prob_formula;
      Alcotest.test_case "reliability complement" `Quick test_reliability_complement;
      Alcotest.test_case "single needs frel" `Quick test_single_meets_iff_at_least_frel;
      Alcotest.test_case "re-exec product" `Quick test_reexec_product;
      Alcotest.test_case "re-exec runs slower" `Quick test_reexec_much_slower_ok;
      Alcotest.test_case "min_reexec root property" `Quick test_min_reexec_speed_root_property;
      Alcotest.test_case "min_reexec monotone in weight" `Quick
        test_min_reexec_speed_monotone_in_weight;
      Alcotest.test_case "vdd single part" `Quick test_vdd_failure_single_part_consistent;
      Alcotest.test_case "vdd additive" `Quick test_vdd_failure_additive;
      Alcotest.test_case "zero sensitivity" `Quick test_zero_sensitivity_flat_rate;
      QCheck_alcotest.to_alcotest qcheck_reexec_floor_feasible;
    ] )
