(* Tests for mappings, schedules, list scheduling, validation and the
   Gantt rendering. *)

let check_float tol = Alcotest.(check (float tol))

let diamond () =
  Dag.make ?labels:None ~weights:[| 1.; 2.; 3.; 4. |]
    ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_mapping_partition_checked () =
  let d = diamond () in
  Alcotest.check_raises "task mapped twice"
    (Invalid_argument "Mapping.make: task mapped twice") (fun () ->
      ignore (Mapping.make ~p:2 d ~order:[| [ 0; 1; 3 ]; [ 1; 2 ] |]));
  Alcotest.check_raises "task unmapped" (Invalid_argument "Mapping.make: task 3 unmapped")
    (fun () -> ignore (Mapping.make ~p:2 d ~order:[| [ 0; 1 ]; [ 2 ] |]))

let test_mapping_order_respects_precedence () =
  let d = diamond () in
  (* 3 before 1 on the same processor conflicts with 1 -> 3 *)
  Alcotest.check_raises "cycle via processor order"
    (Invalid_argument "Dag: cycle detected") (fun () ->
      ignore (Mapping.make ~p:1 d ~order:[| [ 0; 3; 1; 2 ] |]))

let test_constraint_dag () =
  let d = diamond () in
  let m = Mapping.make ~p:2 d ~order:[| [ 0; 1 ]; [ 2; 3 ] |] in
  let cd = Mapping.constraint_dag m in
  (* original 4 edges + (0,1) dup collapses + (2,3) dup collapses: the
     processor-order edges coincide with application edges here *)
  Alcotest.(check int) "edges" 4 (Dag.n_edges cd);
  let m2 = Mapping.make ~p:2 d ~order:[| [ 0; 2 ]; [ 1; 3 ] |] in
  Alcotest.(check bool) "proc edge added" true
    (Dag.is_edge (Mapping.constraint_dag m2) 0 2)

let test_mapping_accessors () =
  let d = diamond () in
  let m = Mapping.make ~p:2 d ~order:[| [ 0; 1 ]; [ 2; 3 ] |] in
  Alcotest.(check int) "proc of 2" 1 (Mapping.proc_of m 2);
  Alcotest.(check int) "rank of 3" 1 (Mapping.rank_of m 3);
  check_float 1e-12 "load p0" 3. (Mapping.load m 0);
  check_float 1e-12 "load p1" 7. (Mapping.load m 1)

let test_single_processor_mapping () =
  let d = diamond () in
  let m = Mapping.single_processor d in
  Alcotest.(check int) "p" 1 (Mapping.p m);
  Alcotest.(check int) "all tasks" 4 (List.length (Mapping.order m 0))

let test_schedule_energy_makespan () =
  let d = diamond () in
  let m = Mapping.single_processor d in
  let s = Schedule.uniform m ~speed:2. in
  (* serial chain: makespan = Σ w / 2 = 5; energy = Σ w·4 = 40 *)
  check_float 1e-9 "makespan" 5. (Schedule.makespan s);
  check_float 1e-9 "energy" 40. (Schedule.energy s)

let test_schedule_parallel_makespan () =
  let d = diamond () in
  let m = Mapping.make ~p:2 d ~order:[| [ 0; 1 ]; [ 2; 3 ] |] in
  let s = Schedule.uniform m ~speed:1. in
  (* critical path 0->2->3 = 8 *)
  check_float 1e-9 "makespan" 8. (Schedule.makespan s)

let test_schedule_work_validation () =
  let d = diamond () in
  let m = Mapping.single_processor d in
  let bogus = Array.make 4 [ [ { Schedule.speed = 1.; time = 99. } ] ] in
  Alcotest.(check bool) "work mismatch rejected" true
    (match Schedule.make m ~executions:bogus with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_schedule_reexecution_accounting () =
  let d = diamond () in
  let m = Mapping.single_processor d in
  let part i f = { Schedule.speed = f; time = Dag.weight d i /. f } in
  let executions =
    [| [ [ part 0 1. ] ]; [ [ part 1 0.5 ]; [ part 1 0.5 ] ]; [ [ part 2 1. ] ]; [ [ part 3 1. ] ] |]
  in
  let s = Schedule.make m ~executions in
  Alcotest.(check bool) "task 1 re-executed" true (Schedule.reexecuted s 1);
  (* worst case: both attempts count: duration 2·(2/0.5) = 8 *)
  check_float 1e-9 "duration worst case" 8. (Schedule.duration s 1);
  (* energy both attempts: 2·w·f² = 2·2·0.25 = 1 *)
  check_float 1e-9 "energy both attempts" 1. (Schedule.task_energy s 1)

let test_schedule_vdd_parts () =
  let d = Dag.make ?labels:None ~weights:[| 2. |] ~edges:[] in
  let m = Mapping.single_processor d in
  let e = [ { Schedule.speed = 0.5; time = 2. }; { Schedule.speed = 1.; time = 1. } ] in
  let s = Schedule.make m ~executions:[| [ e ] |] in
  check_float 1e-9 "exec time" 3. (Schedule.exec_time e);
  check_float 1e-9 "work" 2. (Schedule.exec_work e);
  (* energy 0.5³·2 + 1³·1 = 1.25 *)
  check_float 1e-9 "energy" 1.25 (Schedule.energy s)

let test_with_execs () =
  let d = diamond () in
  let m = Mapping.single_processor d in
  let s = Schedule.uniform m ~speed:1. in
  let part = { Schedule.speed = 0.5; time = Dag.weight d 0 /. 0.5 } in
  let s2 = Schedule.with_execs s 0 [ [ part ]; [ part ] ] in
  Alcotest.(check bool) "updated" true (Schedule.reexecuted s2 0);
  Alcotest.(check bool) "original untouched" false (Schedule.reexecuted s 0)

(* list scheduling *)

let test_bottom_levels () =
  let d = diamond () in
  let bl = List_sched.bottom_levels d in
  check_float 1e-12 "bl sink" 4. bl.(3);
  check_float 1e-12 "bl source" 8. bl.(0);
  check_float 1e-12 "bl mid" 7. bl.(2)

let test_top_levels () =
  let d = diamond () in
  let tl = List_sched.top_levels d in
  check_float 1e-12 "tl source" 0. tl.(0);
  check_float 1e-12 "tl sink" 4. tl.(3)

let test_list_sched_valid_mapping () =
  let rng = Es_util.Rng.create ~seed:42 in
  let d = Generators.random_layered rng ~layers:4 ~width:4 ~density:0.4 ~wlo:1. ~whi:3. in
  List.iter
    (fun prio ->
      let m = List_sched.schedule d ~p:3 ~priority:prio in
      (* Mapping.make already validates; also check the makespan is
         consistent at speed 1 *)
      let ms = List_sched.makespan_at_speed m ~f:1. in
      Alcotest.(check bool)
        (List_sched.priority_name prio ^ " bounds")
        true
        (ms >= Dag.critical_path_length d ~durations:(Dag.weights d) -. 1e-9
        && ms <= Dag.total_weight d +. 1e-9))
    List_sched.all_priorities

let test_list_sched_single_proc_is_serial () =
  let d = diamond () in
  let m = List_sched.schedule d ~p:1 ~priority:List_sched.Bottom_level in
  check_float 1e-9 "serial makespan" (Dag.total_weight d)
    (List_sched.makespan_at_speed m ~f:1.)

let test_list_sched_parallel_speedup () =
  let rng = Es_util.Rng.create ~seed:43 in
  let d = Generators.fork rng ~n:8 ~wlo:1. ~whi:1.5 in
  let m1 = List_sched.schedule d ~p:1 ~priority:List_sched.Bottom_level in
  let m8 = List_sched.schedule d ~p:8 ~priority:List_sched.Bottom_level in
  Alcotest.(check bool) "8 procs faster" true
    (List_sched.makespan_at_speed m8 ~f:1. < List_sched.makespan_at_speed m1 ~f:1. -. 1e-9)

(* validation *)

let rel = Rel.make ~lambda0:1e-4 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()

let test_validate_clean_schedule () =
  let d = diamond () in
  let m = Mapping.single_processor d in
  let s = Schedule.uniform m ~speed:1. in
  Alcotest.(check bool) "feasible" true
    (Validate.is_feasible ~deadline:10.5 ~rel ~model:(Speed.continuous ~fmin:0.2 ~fmax:1.0) s)

let test_validate_deadline_violation () =
  let d = diamond () in
  let m = Mapping.single_processor d in
  let s = Schedule.uniform m ~speed:1. in
  match Validate.check ~deadline:5. ~model:(Speed.continuous ~fmin:0.2 ~fmax:1.0) s with
  | [ Validate.Deadline_exceeded _ ] -> ()
  | other ->
    Alcotest.failf "expected deadline violation, got %d violations" (List.length other)

let test_validate_inadmissible_speed () =
  let d = diamond () in
  let m = Mapping.single_processor d in
  let s = Schedule.uniform m ~speed:0.5 in
  match Validate.check ~model:(Speed.discrete [| 0.4; 1.0 |]) s with
  | violations ->
    Alcotest.(check int) "all four tasks flagged" 4 (List.length violations)

let test_validate_speed_change_forbidden () =
  let d = Dag.make ?labels:None ~weights:[| 2. |] ~edges:[] in
  let m = Mapping.single_processor d in
  let e = [ { Schedule.speed = 0.4; time = 2.5 }; { Schedule.speed = 1.; time = 1. } ] in
  let s = Schedule.make m ~executions:[| [ e ] |] in
  let has_change =
    List.exists
      (function Validate.Speed_change_forbidden _ -> true | _ -> false)
      (Validate.check ~model:(Speed.discrete [| 0.4; 1.0 |]) s)
  in
  Alcotest.(check bool) "speed change flagged" true has_change;
  (* the same schedule is fine under VDD-HOPPING *)
  Alcotest.(check bool) "vdd ok" true
    (Validate.is_feasible ~model:(Speed.vdd_hopping [| 0.4; 1.0 |]) s)

let test_validate_reliability () =
  let d = Dag.make ?labels:None ~weights:[| 2. |] ~edges:[] in
  let m = Mapping.single_processor d in
  (* single execution below frel: violates *)
  let slow = Schedule.uniform m ~speed:0.5 in
  let has_rel =
    List.exists
      (function Validate.Reliability_violated _ -> true | _ -> false)
      (Validate.check ~rel ~model:(Speed.continuous ~fmin:0.2 ~fmax:1.0) slow)
  in
  Alcotest.(check bool) "slow single violates" true has_rel;
  (* re-executed at the floor: passes *)
  match Rel.min_reexec_speed rel ~w:2. with
  | None -> Alcotest.fail "floor must exist"
  | Some flo ->
    let part = { Schedule.speed = flo; time = 2. /. flo } in
    let s = Schedule.make m ~executions:[| [ [ part ]; [ part ] ] |] in
    Alcotest.(check bool) "re-exec at floor ok" true
      (Validate.is_feasible ~rel ~model:(Speed.continuous ~fmin:0.2 ~fmax:1.0) s)

let test_explain_strings () =
  let d = diamond () in
  let v = Validate.Deadline_exceeded { makespan = 2.; deadline = 1. } in
  Alcotest.(check bool) "explain non-empty" true (String.length (Validate.explain d v) > 0)

let test_gantt_renders () =
  let d = diamond () in
  let m = Mapping.make ~p:2 d ~order:[| [ 0; 1 ]; [ 2; 3 ] |] in
  let s = Schedule.uniform m ~speed:1. in
  let g = Gantt.render ?width:None ~deadline:9. s in
  Alcotest.(check bool) "two rows" true
    (List.length (String.split_on_char '\n' g) >= 3)

let suite =
  ( "sched",
    [
      Alcotest.test_case "mapping partition checked" `Quick test_mapping_partition_checked;
      Alcotest.test_case "mapping respects precedence" `Quick
        test_mapping_order_respects_precedence;
      Alcotest.test_case "constraint dag" `Quick test_constraint_dag;
      Alcotest.test_case "mapping accessors" `Quick test_mapping_accessors;
      Alcotest.test_case "single processor mapping" `Quick test_single_processor_mapping;
      Alcotest.test_case "schedule energy/makespan" `Quick test_schedule_energy_makespan;
      Alcotest.test_case "schedule parallel makespan" `Quick test_schedule_parallel_makespan;
      Alcotest.test_case "schedule work validation" `Quick test_schedule_work_validation;
      Alcotest.test_case "re-execution accounting" `Quick test_schedule_reexecution_accounting;
      Alcotest.test_case "vdd parts accounting" `Quick test_schedule_vdd_parts;
      Alcotest.test_case "with_execs functional update" `Quick test_with_execs;
      Alcotest.test_case "bottom levels" `Quick test_bottom_levels;
      Alcotest.test_case "top levels" `Quick test_top_levels;
      Alcotest.test_case "list sched valid mappings" `Quick test_list_sched_valid_mapping;
      Alcotest.test_case "list sched serial" `Quick test_list_sched_single_proc_is_serial;
      Alcotest.test_case "list sched speedup" `Quick test_list_sched_parallel_speedup;
      Alcotest.test_case "validate clean schedule" `Quick test_validate_clean_schedule;
      Alcotest.test_case "validate deadline" `Quick test_validate_deadline_violation;
      Alcotest.test_case "validate inadmissible speed" `Quick test_validate_inadmissible_speed;
      Alcotest.test_case "validate speed change" `Quick test_validate_speed_change_forbidden;
      Alcotest.test_case "validate reliability" `Quick test_validate_reliability;
      Alcotest.test_case "explain strings" `Quick test_explain_strings;
      Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
    ] )

let test_of_assignment () =
  let d = diamond () in
  let m = Mapping.of_assignment ~p:2 d ~proc:[| 0; 1; 0; 1 |] in
  Alcotest.(check (list int)) "proc 0 topo-ordered" [ 0; 2 ] (Mapping.order m 0);
  Alcotest.(check (list int)) "proc 1 topo-ordered" [ 1; 3 ] (Mapping.order m 1);
  Alcotest.check_raises "range checked"
    (Invalid_argument "Mapping.of_assignment: processor out of range") (fun () ->
      ignore (Mapping.of_assignment ~p:2 d ~proc:[| 0; 1; 2; 0 |]))

let suite = (fst suite, snd suite @ [ Alcotest.test_case "of_assignment" `Quick test_of_assignment ])
