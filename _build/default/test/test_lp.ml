(* Tests for the simplex solver and the LP problem builder, including a
   brute-force cross-check on random small LPs: the simplex optimum
   must match the best vertex found by enumerating constraint
   intersections. *)

module Simplex = Es_lp.Simplex
module Problem = Es_lp.Problem

let check_float = Alcotest.(check (float 1e-7))

let constr coeffs relation rhs = { Simplex.coeffs; relation; rhs }

let test_simple_min () =
  (* min x + y  s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
     Optimum at intersection: x = 8/5, y = 6/5, value 14/5. *)
  match
    Simplex.solve ~obj:[| 1.; 1. |]
      [ constr [| 1.; 2. |] Simplex.Ge 4.; constr [| 3.; 1. |] Simplex.Ge 6. ]
  with
  | Simplex.Optimal { objective; solution } ->
    check_float "objective" 2.8 objective;
    check_float "x" 1.6 solution.(0);
    check_float "y" 1.2 solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_le_only () =
  (* min -x - 2y s.t. x + y <= 4, y <= 3 → x=1,y=3, value -7 *)
  match
    Simplex.solve ~obj:[| -1.; -2. |]
      [ constr [| 1.; 1. |] Simplex.Le 4.; constr [| 0.; 1. |] Simplex.Le 3. ]
  with
  | Simplex.Optimal { objective; _ } -> check_float "objective" (-7.) objective
  | _ -> Alcotest.fail "expected optimal"

let test_equality () =
  (* min x + 3y s.t. x + y = 2 → x=2, y=0 *)
  match Simplex.solve ~obj:[| 1.; 3. |] [ constr [| 1.; 1. |] Simplex.Eq 2. ] with
  | Simplex.Optimal { objective; solution } ->
    check_float "objective" 2. objective;
    check_float "y stays 0" 0. solution.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  match
    Simplex.solve ~obj:[| 1. |]
      [ constr [| 1. |] Simplex.Ge 3.; constr [| 1. |] Simplex.Le 1. ]
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  match Simplex.solve ~obj:[| -1. |] [ constr [| -1. |] Simplex.Le 0. ] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_negative_rhs_normalised () =
  (* x >= 2 written as -x <= -2 *)
  match Simplex.solve ~obj:[| 1. |] [ constr [| -1. |] Simplex.Le (-2.) ] with
  | Simplex.Optimal { objective; _ } -> check_float "objective" 2. objective
  | _ -> Alcotest.fail "expected optimal"

let test_degenerate_terminates () =
  (* classic degeneracy: redundant constraints through the optimum *)
  match
    Simplex.solve ~obj:[| -1.; -1. |]
      [
        constr [| 1.; 0. |] Simplex.Le 1.;
        constr [| 0.; 1. |] Simplex.Le 1.;
        constr [| 1.; 1. |] Simplex.Le 2.;
        constr [| 2.; 2. |] Simplex.Le 4.;
      ]
  with
  | Simplex.Optimal { objective; _ } -> check_float "objective" (-2.) objective
  | _ -> Alcotest.fail "expected optimal"

(* Brute-force LP reference: enumerate all choices of n constraints
   (from rows plus axes), solve the linear system, keep feasible points,
   return the best objective.  Sound for bounded non-degenerate LPs. *)
let brute_force ~obj rows =
  let n = Array.length obj in
  let planes =
    (* each row as (coeffs, rhs) equality candidate; plus axes x_i = 0 *)
    List.map (fun (r : Simplex.constr) -> (r.coeffs, r.rhs)) rows
    @ List.init n (fun i -> (Array.init n (fun j -> if i = j then 1. else 0.), 0.))
  in
  let planes = Array.of_list planes in
  let m = Array.length planes in
  let best = ref None in
  let feasible x =
    Array.for_all (fun v -> v >= -1e-7) x
    && List.for_all
         (fun (r : Simplex.constr) ->
           let lhs = ref 0. in
           Array.iteri (fun i c -> lhs := !lhs +. (c *. x.(i))) r.coeffs;
           match r.relation with
           | Simplex.Le -> !lhs <= r.rhs +. 1e-7
           | Simplex.Ge -> !lhs >= r.rhs -. 1e-7
           | Simplex.Eq -> Float.abs (!lhs -. r.rhs) <= 1e-7)
         rows
  in
  let rec choose k start acc =
    if k = 0 then begin
      let a = Array.of_list (List.rev_map (fun i -> Array.copy (fst planes.(i))) acc) in
      let b = Array.of_list (List.rev_map (fun i -> snd planes.(i)) acc) in
      match Es_linalg.Mat.solve a b with
      | x when feasible x ->
        let v = ref 0. in
        Array.iteri (fun i c -> v := !v +. (c *. x.(i))) obj;
        (match !best with
        | Some bv when bv <= !v -> ()
        | _ -> best := Some !v)
      | _ -> ()
      | exception Es_linalg.Mat.Singular -> ()
    end
    else
      for i = start to m - 1 do
        choose (k - 1) (i + 1) (i :: acc)
      done
  in
  choose n 0 [];
  !best

let qcheck_simplex_matches_brute_force =
  QCheck.Test.make ~name:"simplex matches vertex enumeration" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let n = 2 + Es_util.Rng.int rng 2 in
      let m = 2 + Es_util.Rng.int rng 3 in
      (* keep the polytope bounded with a box row, keep costs positive *)
      let rows =
        List.init m (fun _ ->
            let coeffs = Array.init n (fun _ -> Es_util.Rng.uniform_in rng 0.1 2.) in
            constr coeffs Simplex.Ge (Es_util.Rng.uniform_in rng 0.5 4.))
      in
      let obj = Array.init n (fun _ -> Es_util.Rng.uniform_in rng 0.2 2.) in
      match (Simplex.solve ~obj rows, brute_force ~obj rows) with
      | Simplex.Optimal { objective; _ }, Some bf -> Float.abs (objective -. bf) < 1e-5
      | Simplex.Infeasible, None -> true
      | _ -> false)

let test_problem_builder () =
  let lp = Problem.create () in
  let x = Problem.var lp ~obj:2. "x" in
  let y = Problem.var lp ~obj:3. "y" in
  Problem.ge lp [ (1., x); (1., y) ] 10.;
  Problem.le lp [ (1., x) ] 4.;
  (* min 2x + 3y, x+y >= 10, x <= 4 → x=4, y=6, value 26 *)
  match Problem.solve lp with
  | Problem.Solution s ->
    check_float "objective" 26. (Problem.objective s);
    check_float "x" 4. (Problem.value s x);
    check_float "y" 6. (Problem.value s y)
  | _ -> Alcotest.fail "expected solution"

let test_problem_upper_bound () =
  let lp = Problem.create () in
  let x = Problem.var lp ~obj:(-1.) "x" in
  Problem.upper_bound lp x 7.;
  match Problem.solve lp with
  | Problem.Solution s -> check_float "x at bound" 7. (Problem.value s x)
  | _ -> Alcotest.fail "expected solution"

let test_problem_obj_coeff_update () =
  let lp = Problem.create () in
  let x = Problem.var lp ~obj:1. "x" in
  let y = Problem.var lp ~obj:1. "y" in
  Problem.obj_coeff lp x (-2.);
  Problem.upper_bound lp x 3.;
  Problem.upper_bound lp y 3.;
  (* min -2x + y → x = 3, y = 0 *)
  match Problem.solve lp with
  | Problem.Solution s ->
    check_float "objective" (-6.) (Problem.objective s);
    check_float "x" 3. (Problem.value s x)
  | _ -> Alcotest.fail "expected solution"

let test_problem_counts () =
  let lp = Problem.create () in
  let x = Problem.var lp "x" in
  Problem.le lp [ (1., x) ] 1.;
  Problem.ge lp [ (1., x) ] 0.;
  Alcotest.(check int) "vars" 1 (Problem.n_vars lp);
  Alcotest.(check int) "rows" 2 (Problem.n_constraints lp)

let suite =
  ( "lp",
    [
      Alcotest.test_case "simple minimisation" `Quick test_simple_min;
      Alcotest.test_case "le-only problem" `Quick test_le_only;
      Alcotest.test_case "equality row" `Quick test_equality;
      Alcotest.test_case "infeasible detected" `Quick test_infeasible;
      Alcotest.test_case "unbounded detected" `Quick test_unbounded;
      Alcotest.test_case "negative rhs normalised" `Quick test_negative_rhs_normalised;
      Alcotest.test_case "degenerate instance terminates" `Quick test_degenerate_terminates;
      QCheck_alcotest.to_alcotest qcheck_simplex_matches_brute_force;
      Alcotest.test_case "problem builder" `Quick test_problem_builder;
      Alcotest.test_case "problem upper bound" `Quick test_problem_upper_bound;
      Alcotest.test_case "problem obj update" `Quick test_problem_obj_coeff_update;
      Alcotest.test_case "problem counts" `Quick test_problem_counts;
    ] )

(* --- duals ----------------------------------------------------------- *)

let test_duals_simple () =
  (* min x + y s.t. x + 2y >= 4, 3x + y >= 6: optimum (1.6, 1.2).
     Duals solve: y1 + 3y2 = 1, 2y1 + y2 = 1 → y1 = 0.4, y2 = 0.2. *)
  match
    Simplex.solve ?max_iters:None ~obj:[| 1.; 1. |]
      [ constr [| 1.; 2. |] Simplex.Ge 4.; constr [| 3.; 1. |] Simplex.Ge 6. ]
  with
  | Simplex.Optimal { duals; _ } ->
    check_float "dual 1" 0.4 duals.(0);
    check_float "dual 2" 0.2 duals.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_duals_nonbinding_row_zero () =
  (* min x s.t. x >= 2, x <= 100 — the upper bound is slack *)
  match
    Simplex.solve ?max_iters:None ~obj:[| 1. |]
      [ constr [| 1. |] Simplex.Ge 2.; constr [| 1. |] Simplex.Le 100. ]
  with
  | Simplex.Optimal { duals; _ } ->
    check_float "binding" 1. duals.(0);
    check_float "slack row" 0. duals.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_duals_equality () =
  (* min 2x + 3y s.t. x + y = 5 → all mass on x, dual = 2 *)
  match Simplex.solve ?max_iters:None ~obj:[| 2.; 3. |] [ constr [| 1.; 1. |] Simplex.Eq 5. ] with
  | Simplex.Optimal { duals; _ } -> check_float "eq dual" 2. duals.(0)
  | _ -> Alcotest.fail "expected optimal"

let qcheck_duals_predict_rhs_perturbation =
  (* finite-difference check: objective(b + h) − objective(b) ≈ y·h for
     a small perturbation of one ≥ row *)
  QCheck.Test.make ~name:"duals = dObj/dRhs (finite differences)" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let n = 2 + Es_util.Rng.int rng 2 in
      let rows b0 =
        List.init 3 (fun k ->
            let coeffs =
              Array.init n (fun j ->
                  (* deterministic per (seed, k, j): rebuild from a fresh
                     stream so both solves see identical rows *)
                  let r = Es_util.Rng.create ~seed:((seed * 31) + (k * 7) + j) in
                  Es_util.Rng.uniform_in r 0.2 2.)
            in
            constr coeffs Simplex.Ge (if k = 0 then b0 else 3.))
      in
      let obj =
        Array.init n (fun j ->
            let r = Es_util.Rng.create ~seed:((seed * 17) + j) in
            Es_util.Rng.uniform_in r 0.5 2.)
      in
      let h = 1e-5 in
      match (Simplex.solve ?max_iters:None ~obj (rows 3.), Simplex.solve ?max_iters:None ~obj (rows (3. +. h))) with
      | Simplex.Optimal { objective = o1; duals; _ }, Simplex.Optimal { objective = o2; _ }
        ->
        Float.abs (o2 -. o1 -. (duals.(0) *. h)) < 1e-7
      | _ -> false)

let duals_cases =
  [
    Alcotest.test_case "duals simple" `Quick test_duals_simple;
    Alcotest.test_case "duals nonbinding zero" `Quick test_duals_nonbinding_row_zero;
    Alcotest.test_case "duals equality" `Quick test_duals_equality;
    QCheck_alcotest.to_alcotest qcheck_duals_predict_rhs_perturbation;
  ]

let suite = (fst suite, snd suite @ duals_cases)
