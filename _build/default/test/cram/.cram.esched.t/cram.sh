  $ esched generate -w fork -n 4 --seed 7 | head -3
  $ esched solve -w fork -n 4 --seed 7 -m continuous --slack 2 | tail -3
  $ esched solve -w fork -n 4 --seed 7 -m vdd --slack 2 | head -2
  $ esched solve -w fork -n 4 --seed 7 -m continuous -r --slack 3 | grep validation
