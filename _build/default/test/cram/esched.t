The CLI pipeline is deterministic given a seed: generate a workload,
solve it under two models, and check the validator's verdict.

  $ esched generate -w fork -n 4 --seed 7 | head -3
  tasks: 5, edges: 4, total weight: 11.977
  critical path (at fmax): 5.229
  T0 (w=2.25144) -> T1, T2, T3, T4

  $ esched solve -w fork -n 4 --seed 7 -m continuous --slack 2 | tail -3
  energy: 2.407788
  worst-case makespan: 10.457184
  validation: OK

  $ esched solve -w fork -n 4 --seed 7 -m vdd --slack 2 | head -2
  n=5 p=4 Dmin=5.2286 deadline=10.4572 model=vdd-hopping
  engine: vdd-hopping LP (provably optimal)

TRI-CRIT with reliability engages re-execution machinery end to end.

  $ esched solve -w fork -n 4 --seed 7 -m continuous -r --slack 3 | grep validation
  validation: OK
