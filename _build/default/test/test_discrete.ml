(* Tests for DISCRETE and INCREMENTAL BI-CRIT (R5/R6): the exact
   branch-and-bound, the round-up approximation and its proven ratio. *)

let levels = [| 0.25; 0.5; 0.75; 1.0 |]

let small_instance ~seed =
  let rng = Es_util.Rng.create ~seed in
  let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  let mapping = List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level in
  let dmin = List_sched.makespan_at_speed mapping ~f:1. in
  (mapping, dmin)

let brute_force_discrete ~deadline ~levels mapping =
  (* reference: enumerate every speed assignment *)
  let cdag = Mapping.constraint_dag mapping in
  let n = Dag.n cdag in
  let speeds = Array.make n levels.(0) in
  let best = ref None in
  let rec enum i =
    if i = n then begin
      let durations = Array.init n (fun j -> Dag.weight cdag j /. speeds.(j)) in
      if Dag.critical_path_length cdag ~durations <= deadline *. (1. +. 1e-12) then begin
        let e = ref 0. in
        for j = 0 to n - 1 do
          e := !e +. (Dag.weight cdag j *. speeds.(j) *. speeds.(j))
        done;
        match !best with
        | Some b when b <= !e -> ()
        | _ -> best := Some !e
      end
    end
    else
      Array.iter
        (fun f ->
          speeds.(i) <- f;
          enum (i + 1))
        levels
  in
  enum 0;
  !best

let test_exact_matches_brute_force () =
  List.iter
    (fun seed ->
      let mapping, dmin = small_instance ~seed in
      if Dag.n (Mapping.dag mapping) <= 8 then begin
        let deadline = 1.5 *. dmin in
        let bb =
          Option.map
            (fun (r : Bicrit_discrete.exact) -> r.energy)
            (Bicrit_discrete.solve_exact ?node_limit:None ~deadline ~levels mapping)
        in
        let bf = brute_force_discrete ~deadline ~levels mapping in
        match (bb, bf) with
        | Some a, Some b ->
          Alcotest.(check (float 1e-9)) (Printf.sprintf "seed %d optimal" seed) b a
        | None, None -> ()
        | _ -> Alcotest.fail "feasibility disagreement"
      end)
    [ 61; 62; 63; 64; 65 ]

let test_exact_feasible_schedule () =
  let mapping, dmin = small_instance ~seed:66 in
  let deadline = 1.4 *. dmin in
  match Bicrit_discrete.solve_exact ?node_limit:None ~deadline ~levels mapping with
  | None -> Alcotest.fail "expected feasible"
  | Some { schedule; _ } ->
    Alcotest.(check bool) "validator accepts" true
      (Validate.is_feasible ~deadline ~model:(Speed.discrete levels) schedule)

let test_exact_infeasible () =
  let mapping, dmin = small_instance ~seed:67 in
  Alcotest.(check bool) "tight deadline" true
    (Bicrit_discrete.solve_exact ?node_limit:None ~deadline:(0.3 *. dmin) ~levels mapping
    = None)

let test_exact_at_exact_dmin () =
  (* deadline exactly D_min: everything at fmax is the only choice *)
  let mapping, dmin = small_instance ~seed:68 in
  match Bicrit_discrete.solve_exact ?node_limit:None ~deadline:dmin ~levels mapping with
  | None -> Alcotest.fail "feasible at dmin"
  | Some { schedule; _ } ->
    let dag = Mapping.dag mapping in
    for i = 0 to Dag.n dag - 1 do
      match Schedule.executions schedule i with
      | [ [ p ] ] ->
        (* most tasks must run at fmax; all must be at some level *)
        Alcotest.(check bool) "level speed" true
          (Array.exists (fun l -> Float.abs (l -. p.Schedule.speed) < 1e-9) levels)
      | _ -> Alcotest.fail "single execution expected"
    done

let test_round_up_feasible_and_bounded () =
  List.iter
    (fun seed ->
      let mapping, dmin = small_instance ~seed in
      let deadline = 1.6 *. dmin in
      match
        ( Bicrit_discrete.round_up ~deadline ~levels mapping,
          Bicrit_discrete.solve_exact ?node_limit:None ~deadline ~levels mapping )
      with
      | Some approx, Some exact ->
        Alcotest.(check bool) "feasible" true
          (Validate.is_feasible ~deadline ~model:(Speed.discrete levels) approx);
        let ea = Schedule.energy approx in
        Alcotest.(check bool) "approx >= optimal" true
          (ea >= exact.Bicrit_discrete.energy -. 1e-9);
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.3f within bound %.3f" (ea /. exact.energy)
             (Bicrit_discrete.ratio_bound ~levels))
          true
          (ea <= exact.Bicrit_discrete.energy *. Bicrit_discrete.ratio_bound ~levels *. (1. +. 1e-6))
      | None, None -> ()
      | Some _, None -> Alcotest.fail "approx feasible but exact infeasible?"
      | None, Some _ ->
        (* round-up can fail when the continuous optimum needs more
           than the top level; with ratio sweeps this does not occur
           at slack 1.6 *)
        Alcotest.fail "round-up failed on feasible instance")
    [ 71; 72; 73 ]

let test_ratio_bound_value () =
  Alcotest.(check (float 1e-9)) "max ratio is 2² over the gaps" 4.
    (Bicrit_discrete.ratio_bound ~levels:[| 0.25; 0.5; 1.0 |])

(* INCREMENTAL *)

let test_incremental_grid () =
  let g = Bicrit_incremental.grid ~fmin:0.2 ~fmax:1.0 ~delta:0.2 in
  Alcotest.(check int) "5 points" 5 (Array.length g)

let test_incremental_bound_formula () =
  Alcotest.(check (float 1e-9)) "without K" 2.25
    (Bicrit_incremental.bound ~fmin:0.2 ~delta:0.1 ~k:None);
  Alcotest.(check (float 1e-9)) "with K = 1" 9.
    (Bicrit_incremental.bound ~fmin:0.2 ~delta:0.1 ~k:(Some 1))

let test_incremental_approx_within_bound () =
  List.iter
    (fun delta ->
      let mapping, dmin = small_instance ~seed:74 in
      let deadline = 1.7 *. dmin in
      let fmin = 0.2 and fmax = 1.0 in
      match Bicrit_incremental.approximate ~deadline ~fmin ~fmax ~delta mapping with
      | None -> Alcotest.fail "feasible"
      | Some sched ->
        Alcotest.(check bool) "feasible schedule" true
          (Validate.is_feasible ~deadline ~model:(Speed.incremental ~fmin ~fmax ~delta) sched);
        let n = Dag.n (Mapping.dag mapping) in
        let continuous =
          match
            Bicrit_continuous.solve_general ~lo:(Array.make n fmin)
              ~hi:(Array.make n fmax) ~deadline mapping
          with
          | Some r -> r.Bicrit_continuous.energy
          | None -> Alcotest.fail "continuous feasible"
        in
        let ratio = Schedule.energy sched /. continuous in
        let bound = Bicrit_incremental.bound ~fmin ~delta ~k:None in
        Alcotest.(check bool)
          (Printf.sprintf "delta %.2f: ratio %.4f <= %.4f" delta ratio bound)
          true (ratio <= bound *. (1. +. 1e-6)))
    [ 0.05; 0.1; 0.2; 0.4 ]

let test_incremental_finer_grid_converges () =
  let mapping, dmin = small_instance ~seed:75 in
  let deadline = 1.7 *. dmin in
  let fmin = 0.2 and fmax = 1.0 in
  let energies =
    List.filter_map
      (fun delta ->
        Option.map Schedule.energy
          (Bicrit_incremental.approximate ~deadline ~fmin ~fmax ~delta mapping))
      [ 0.4; 0.2; 0.1; 0.05; 0.025 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> b <= a *. (1. +. 1e-9) && non_increasing rest
    | _ -> true
  in
  Alcotest.(check int) "all feasible" 5 (List.length energies);
  Alcotest.(check bool) "finer grid no worse" true (non_increasing energies)

let suite =
  ( "bicrit-discrete",
    [
      Alcotest.test_case "exact matches brute force" `Slow test_exact_matches_brute_force;
      Alcotest.test_case "exact feasible schedule" `Quick test_exact_feasible_schedule;
      Alcotest.test_case "exact infeasible" `Quick test_exact_infeasible;
      Alcotest.test_case "exact at dmin" `Quick test_exact_at_exact_dmin;
      Alcotest.test_case "round-up feasible and bounded" `Slow test_round_up_feasible_and_bounded;
      Alcotest.test_case "ratio bound value" `Quick test_ratio_bound_value;
      Alcotest.test_case "incremental grid" `Quick test_incremental_grid;
      Alcotest.test_case "incremental bound formula" `Quick test_incremental_bound_formula;
      Alcotest.test_case "incremental within bound" `Slow test_incremental_approx_within_bound;
      Alcotest.test_case "incremental converges" `Slow test_incremental_finer_grid_converges;
    ] )
