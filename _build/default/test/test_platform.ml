(* Tests for the speed models: validation, rounding, bracketing,
   energy/time accounting. *)

let check_float tol = Alcotest.(check (float tol))

let cont = Speed.continuous ~fmin:0.2 ~fmax:1.0
let disc = Speed.discrete [| 0.6; 0.2; 1.0 |] (* unsorted on purpose *)
let incr = Speed.incremental ~fmin:0.2 ~fmax:1.0 ~delta:0.2

let test_constructors_validate () =
  Alcotest.check_raises "bad range" (Invalid_argument "Speed: need 0 < fmin <= fmax")
    (fun () -> ignore (Speed.continuous ~fmin:2. ~fmax:1.));
  Alcotest.check_raises "empty set" (Invalid_argument "Speed: empty speed set") (fun () ->
      ignore (Speed.discrete [||]));
  Alcotest.check_raises "bad delta" (Invalid_argument "Speed: need delta > 0") (fun () ->
      ignore (Speed.incremental ~fmin:0.1 ~fmax:1. ~delta:0.))

let test_discrete_sorted_dedup () =
  let d = Speed.discrete [| 0.5; 0.2; 0.5; 1.0 |] in
  match Speed.levels d with
  | Some l -> Alcotest.(check (array (float 1e-12))) "sorted unique" [| 0.2; 0.5; 1.0 |] l
  | None -> Alcotest.fail "levels expected"

let test_bounds () =
  check_float 1e-12 "cont fmin" 0.2 (Speed.fmin cont);
  check_float 1e-12 "cont fmax" 1.0 (Speed.fmax cont);
  check_float 1e-12 "disc fmin" 0.2 (Speed.fmin disc);
  check_float 1e-12 "disc fmax" 1.0 (Speed.fmax disc)

let test_incremental_grid () =
  match Speed.levels incr with
  | Some l ->
    Alcotest.(check int) "5 levels" 5 (Array.length l);
    check_float 1e-9 "first" 0.2 l.(0);
    check_float 1e-9 "last" 1.0 l.(4)
  | None -> Alcotest.fail "levels expected"

let test_admissible () =
  Alcotest.(check bool) "cont inside" true (Speed.admissible ?tol:None cont 0.5);
  Alcotest.(check bool) "cont outside" false (Speed.admissible ?tol:None cont 1.5);
  Alcotest.(check bool) "disc level" true (Speed.admissible ?tol:None disc 0.6);
  Alcotest.(check bool) "disc between" false (Speed.admissible ?tol:None disc 0.5);
  Alcotest.(check bool) "incr grid point" true (Speed.admissible ?tol:None incr 0.6);
  Alcotest.(check bool) "incr off grid" false (Speed.admissible ?tol:None incr 0.5)

let test_round_up () =
  Alcotest.(check (option (float 1e-9))) "disc up" (Some 0.6) (Speed.round_up disc 0.3);
  Alcotest.(check (option (float 1e-9))) "disc exact" (Some 0.6) (Speed.round_up disc 0.6);
  Alcotest.(check (option (float 1e-9))) "disc above" None (Speed.round_up disc 1.2);
  Alcotest.(check (option (float 1e-9))) "incr up" (Some 0.6) (Speed.round_up incr 0.45);
  Alcotest.(check (option (float 1e-9))) "cont clamps" (Some 0.2) (Speed.round_up cont 0.1)

let test_round_down () =
  Alcotest.(check (option (float 1e-9))) "disc down" (Some 0.2) (Speed.round_down disc 0.5);
  Alcotest.(check (option (float 1e-9))) "disc below" None (Speed.round_down disc 0.1);
  Alcotest.(check (option (float 1e-9))) "incr down" (Some 0.4) (Speed.round_down incr 0.45)

let test_bracket () =
  (match Speed.bracket disc 0.7 with
  | Some (lo, hi) ->
    check_float 1e-9 "lo" 0.6 lo;
    check_float 1e-9 "hi" 1.0 hi
  | None -> Alcotest.fail "bracket expected");
  (match Speed.bracket disc 0.6 with
  | Some (lo, hi) ->
    check_float 1e-9 "exact lo" 0.6 lo;
    check_float 1e-9 "exact hi" 0.6 hi
  | None -> Alcotest.fail "bracket expected");
  Alcotest.(check bool) "out of range" true (Speed.bracket disc 1.5 = None)

let test_energy_time () =
  check_float 1e-12 "time" 4. (Speed.exec_time ~w:2. ~f:0.5);
  check_float 1e-12 "energy" 0.5 (Speed.energy ~w:2. ~f:0.5)

let test_platform () =
  let p = Platform.make ~p:4 ~model:cont in
  Alcotest.(check int) "p" 4 (Platform.p p);
  Alcotest.check_raises "p >= 1" (Invalid_argument "Platform.make: need p >= 1") (fun () ->
      ignore (Platform.make ~p:0 ~model:cont))

let qcheck_round_up_is_admissible =
  QCheck.Test.make ~name:"round_up lands on admissible speeds" ~count:300
    QCheck.(float_range 0.01 1.2)
    (fun f ->
      List.for_all
        (fun m ->
          match Speed.round_up m f with
          | None -> true
          | Some g -> Speed.admissible ~tol:1e-6 m g && g >= f -. 1e-9)
        [ cont; disc; incr ])

let qcheck_bracket_orders =
  QCheck.Test.make ~name:"bracket brackets" ~count:300
    QCheck.(float_range 0.2 1.0)
    (fun f ->
      List.for_all
        (fun m ->
          match Speed.bracket m f with
          | None -> false (* inside the range a bracket must exist *)
          | Some (lo, hi) -> lo <= f +. 1e-9 && f <= hi +. 1e-9 && lo <= hi)
        [ cont; disc; incr ])

let suite =
  ( "platform",
    [
      Alcotest.test_case "constructor validation" `Quick test_constructors_validate;
      Alcotest.test_case "discrete sorted+dedup" `Quick test_discrete_sorted_dedup;
      Alcotest.test_case "bounds" `Quick test_bounds;
      Alcotest.test_case "incremental grid" `Quick test_incremental_grid;
      Alcotest.test_case "admissible" `Quick test_admissible;
      Alcotest.test_case "round up" `Quick test_round_up;
      Alcotest.test_case "round down" `Quick test_round_down;
      Alcotest.test_case "bracket" `Quick test_bracket;
      Alcotest.test_case "energy/time" `Quick test_energy_time;
      Alcotest.test_case "platform" `Quick test_platform;
      QCheck_alcotest.to_alcotest qcheck_round_up_is_admissible;
      QCheck_alcotest.to_alcotest qcheck_bracket_orders;
    ] )
