(* Tests for series-parallel graphs: composition, expansion to DAGs,
   recognition, and the equivalent-weight recursion. *)

let check_float tol = Alcotest.(check (float tol))

let test_builders () =
  let c = Sp.chain [| 1.; 2.; 3. |] in
  Alcotest.(check int) "chain leaves" 3 (Sp.n_tasks c);
  check_float 1e-12 "chain weight" 6. (Sp.total_weight c);
  let f = Sp.fork ~root:1. [| 2.; 3. |] in
  Alcotest.(check int) "fork leaves" 3 (Sp.n_tasks f)

let test_weights_order () =
  let t = Sp.Series (Sp.leaf 1., Sp.Parallel (Sp.leaf 2., Sp.leaf 3.)) in
  Alcotest.(check (array (float 1e-12))) "left-to-right" [| 1.; 2.; 3. |] (Sp.weights t)

let test_to_dag_chain () =
  let d = Sp.to_dag (Sp.chain [| 1.; 2.; 3. |]) in
  Alcotest.(check int) "edges" 2 (Dag.n_edges d);
  Alcotest.(check bool) "0->1" true (Dag.is_edge d 0 1);
  Alcotest.(check bool) "1->2" true (Dag.is_edge d 1 2)

let test_to_dag_fork () =
  let d = Sp.to_dag (Sp.fork ~root:1. [| 2.; 3.; 4. |]) in
  Alcotest.(check (list int)) "source" [ 0 ] (Dag.sources d);
  Alcotest.(check int) "3 sinks" 3 (List.length (Dag.sinks d));
  Alcotest.(check int) "edges" 3 (Dag.n_edges d)

let test_to_dag_series_complete_bipartite () =
  (* (a | b) ; (c | d): edges = 4 (each of a,b to each of c,d) *)
  let t =
    Sp.Series
      (Sp.Parallel (Sp.leaf 1., Sp.leaf 2.), Sp.Parallel (Sp.leaf 3., Sp.leaf 4.))
  in
  let d = Sp.to_dag t in
  Alcotest.(check int) "complete bipartite join" 4 (Dag.n_edges d)

let test_of_dag_chain () =
  let d = Sp.to_dag (Sp.chain [| 1.; 2.; 3. |]) in
  match Sp.of_dag d with
  | None -> Alcotest.fail "chain should be recognised"
  | Some sp -> Alcotest.(check int) "same size" 3 (Sp.n_tasks sp)

let test_of_dag_rejects_non_sp () =
  (* the "N" graph is the canonical non-SP example:
     a->c, a->d, b->d (b has no edge to c) *)
  let d =
    Dag.make ?labels:None ~weights:[| 1.; 1.; 1.; 1. |]
      ~edges:[ (0, 2); (0, 3); (1, 3) ]
  in
  Alcotest.(check bool) "N graph rejected" true (Sp.of_dag d = None)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"of_dag recognises every generated SP graph" ~count:100
    QCheck.(pair (int_bound 100_000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Es_util.Rng.create ~seed in
      let sp = Generators.random_sp rng ~n ~wlo:1. ~whi:5. in
      match Sp.of_dag (Sp.to_dag sp) with
      | None -> false
      | Some sp' ->
        (* recognition may re-associate; compare the invariant the core
           library consumes: the equivalent weight and the leaf count *)
        Sp.n_tasks sp' = Sp.n_tasks sp
        && Float.abs
             (Bicrit_continuous.sp_equivalent_weight sp'
             -. Bicrit_continuous.sp_equivalent_weight sp)
           < 1e-6 *. Sp.total_weight sp)

let test_equivalent_weight_chain () =
  (* series composition adds *)
  check_float 1e-12 "chain eq weight" 6.
    (Bicrit_continuous.sp_equivalent_weight (Sp.chain [| 1.; 2.; 3. |]))

let test_equivalent_weight_fork () =
  (* fork: w0 + (Σ wᵢ³)^(1/3) *)
  let sp = Sp.fork ~root:2. [| 1.; 1. |] in
  check_float 1e-12 "fork eq weight"
    (2. +. Float.cbrt 2.)
    (Bicrit_continuous.sp_equivalent_weight sp)

let test_pp_smoke () =
  let s = Format.asprintf "%a" Sp.pp (Sp.fork ~root:1. [| 2.; 3. |]) in
  Alcotest.(check bool) "non-empty" true (String.length s > 0)

let suite =
  ( "sp",
    [
      Alcotest.test_case "builders" `Quick test_builders;
      Alcotest.test_case "weights order" `Quick test_weights_order;
      Alcotest.test_case "to_dag chain" `Quick test_to_dag_chain;
      Alcotest.test_case "to_dag fork" `Quick test_to_dag_fork;
      Alcotest.test_case "series joins complete bipartite" `Quick
        test_to_dag_series_complete_bipartite;
      Alcotest.test_case "of_dag chain" `Quick test_of_dag_chain;
      Alcotest.test_case "of_dag rejects N graph" `Quick test_of_dag_rejects_non_sp;
      QCheck_alcotest.to_alcotest qcheck_roundtrip;
      Alcotest.test_case "eq weight: chain" `Quick test_equivalent_weight_chain;
      Alcotest.test_case "eq weight: fork" `Quick test_equivalent_weight_fork;
      Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    ] )
