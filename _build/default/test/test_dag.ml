(* Tests for the DAG substrate: construction/validation, topological
   order, critical paths, slack, transitive reduction, generators. *)

let diamond () =
  (* 0 -> {1,2} -> 3 *)
  Dag.make ?labels:None ~weights:[| 1.; 2.; 3.; 4. |]
    ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_make_valid () =
  let d = diamond () in
  Alcotest.(check int) "n" 4 (Dag.n d);
  Alcotest.(check int) "edges" 4 (Dag.n_edges d);
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (Dag.succs d 0);
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (Dag.preds d 3);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources d);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks d)

let test_rejects_cycle () =
  Alcotest.check_raises "cycle" (Invalid_argument "Dag: cycle detected") (fun () ->
      ignore (Dag.make ?labels:None ~weights:[| 1.; 1. |] ~edges:[ (0, 1); (1, 0) ]))

let test_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.make: self loop") (fun () ->
      ignore (Dag.make ?labels:None ~weights:[| 1. |] ~edges:[ (0, 0) ]))

let test_rejects_bad_weight () =
  Alcotest.check_raises "weight" (Invalid_argument "Dag.make: weight 0 not positive")
    (fun () -> ignore (Dag.make ?labels:None ~weights:[| 0. |] ~edges:[]))

let test_duplicate_edges_collapsed () =
  let d = Dag.make ?labels:None ~weights:[| 1.; 1. |] ~edges:[ (0, 1); (0, 1) ] in
  Alcotest.(check int) "single edge" 1 (Dag.n_edges d)

let test_topological_order () =
  let d = diamond () in
  let order = Dag.topological_order d in
  let pos = Array.make 4 0 in
  Array.iteri (fun k i -> pos.(i) <- k) order;
  List.iter
    (fun (i, j) -> Alcotest.(check bool) "edge forward" true (pos.(i) < pos.(j)))
    (Dag.edges d)

let test_critical_path () =
  let d = diamond () in
  let durations = Dag.weights d in
  (* longest path 0 -> 2 -> 3 : 1 + 3 + 4 = 8 *)
  Alcotest.(check (float 1e-12)) "cp" 8. (Dag.critical_path_length d ~durations)

let test_earliest_latest_slack () =
  let d = diamond () in
  let durations = Dag.weights d in
  let es = Dag.earliest_start d ~durations in
  Alcotest.(check (float 1e-12)) "es0" 0. es.(0);
  Alcotest.(check (float 1e-12)) "es1" 1. es.(1);
  Alcotest.(check (float 1e-12)) "es3" 4. es.(3);
  let slack = Dag.slack d ~durations ~deadline:8. in
  (* task 1 (weight 2) has 1 unit of float; the others are critical *)
  Alcotest.(check (float 1e-12)) "slack crit 0" 0. slack.(0);
  Alcotest.(check (float 1e-12)) "slack task 1" 1. slack.(1);
  Alcotest.(check (float 1e-12)) "slack crit 2" 0. slack.(2);
  Alcotest.(check (float 1e-12)) "slack crit 3" 0. slack.(3)

let test_slack_with_loose_deadline () =
  let d = diamond () in
  let slack = Dag.slack d ~durations:(Dag.weights d) ~deadline:10. in
  Array.iter (fun s -> Alcotest.(check bool) "slack grows" true (s >= 2. -. 1e-12)) slack

let test_ancestors_descendants () =
  let d = diamond () in
  Alcotest.(check (list int)) "anc 3" [ 0; 1; 2 ] (Dag.ancestors d 3);
  Alcotest.(check (list int)) "desc 0" [ 1; 2; 3 ] (Dag.descendants d 0);
  Alcotest.(check (list int)) "anc 0" [] (Dag.ancestors d 0)

let test_transitive_reduction () =
  (* 0->1->2 plus shortcut 0->2: reduction drops the shortcut *)
  let d =
    Dag.make ?labels:None ~weights:[| 1.; 1.; 1. |] ~edges:[ (0, 1); (1, 2); (0, 2) ]
  in
  let r = Dag.transitive_reduction d in
  Alcotest.(check int) "edge dropped" 2 (Dag.n_edges r);
  Alcotest.(check bool) "0->2 gone" false (Dag.is_edge r 0 2)

let test_reverse () =
  let d = diamond () in
  let r = Dag.reverse d in
  Alcotest.(check (list int)) "reversed sources" [ 3 ] (Dag.sources r);
  Alcotest.(check bool) "edge flipped" true (Dag.is_edge r 3 1)

let test_map_weights () =
  let d = diamond () in
  let doubled = Dag.map_weights d (fun _ w -> 2. *. w) in
  Alcotest.(check (float 1e-12)) "total doubled" (2. *. Dag.total_weight d)
    (Dag.total_weight doubled)

(* generators *)

let rng () = Es_util.Rng.create ~seed:77

let test_gen_chain () =
  let d = Generators.chain (rng ()) ~n:6 ~wlo:1. ~whi:2. in
  Alcotest.(check int) "n" 6 (Dag.n d);
  Alcotest.(check int) "edges" 5 (Dag.n_edges d);
  Alcotest.(check (list int)) "one source" [ 0 ] (Dag.sources d)

let test_gen_fork () =
  let d = Generators.fork (rng ()) ~n:5 ~wlo:1. ~whi:2. in
  Alcotest.(check int) "n" 6 (Dag.n d);
  Alcotest.(check (list int)) "source" [ 0 ] (Dag.sources d);
  Alcotest.(check int) "children are sinks" 5 (List.length (Dag.sinks d))

let test_gen_fork_join () =
  let d = Generators.fork_join (rng ()) ~n:4 ~wlo:1. ~whi:2. in
  Alcotest.(check int) "n" 6 (Dag.n d);
  Alcotest.(check (list int)) "source" [ 0 ] (Dag.sources d);
  Alcotest.(check (list int)) "sink" [ 5 ] (Dag.sinks d)

let test_gen_layered_connected () =
  let d = Generators.random_layered (rng ()) ~layers:5 ~width:4 ~density:0.2 ~wlo:1. ~whi:2. in
  (* every non-source task has a predecessor by construction *)
  let sources = Dag.sources d in
  List.iter
    (fun i ->
      if not (List.mem i sources) then
        Alcotest.(check bool) "has pred" true (Dag.preds d i <> []))
    (List.init (Dag.n d) Fun.id)

let test_gen_out_tree () =
  let d = Generators.out_tree (rng ()) ~n:15 ~max_children:3 ~wlo:1. ~whi:2. in
  Alcotest.(check int) "edges = n-1" 14 (Dag.n_edges d);
  List.iteri
    (fun i _ ->
      Alcotest.(check bool) "arity capped" true (List.length (Dag.succs d i) <= 3))
    (List.init 15 Fun.id)

let test_gen_in_tree () =
  let d = Generators.in_tree (rng ()) ~n:10 ~max_children:2 ~wlo:1. ~whi:2. in
  Alcotest.(check int) "single sink" 1 (List.length (Dag.sinks d))

let test_gen_lu_structure () =
  let d = Generators.lu ~n:3 in
  (* 3 pivots + 2·(2+1) panels + (4+1) updates = 14 tasks *)
  Alcotest.(check int) "task count" 14 (Dag.n d);
  Alcotest.(check (list int)) "single source (first pivot)" [ 0 ] (Dag.sources d)

let test_gen_fft_structure () =
  let d = Generators.fft ~levels:3 in
  Alcotest.(check int) "tasks = (levels+1)·lanes" 32 (Dag.n d);
  (* butterfly: every non-input task has exactly 2 predecessors *)
  List.iter
    (fun i ->
      if Dag.preds d i <> [] then
        Alcotest.(check int) "two preds" 2 (List.length (Dag.preds d i)))
    (List.init (Dag.n d) Fun.id)

let test_gen_stencil_structure () =
  let d = Generators.stencil ~rows:3 ~cols:4 in
  Alcotest.(check int) "tasks" 12 (Dag.n d);
  Alcotest.(check (list int)) "corner source" [ 0 ] (Dag.sources d);
  Alcotest.(check (list int)) "corner sink" [ 11 ] (Dag.sinks d)

let qcheck_random_dag_acyclic =
  QCheck.Test.make ~name:"random_dag builds valid DAGs" ~count:50
    QCheck.(pair (int_bound 10_000) (int_range 1 30))
    (fun (seed, n) ->
      let r = Es_util.Rng.create ~seed in
      let d = Generators.random_dag r ~n ~p:0.3 ~wlo:1. ~whi:2. in
      Array.length (Dag.topological_order d) = n)

let qcheck_slack_nonneg_at_cp =
  QCheck.Test.make ~name:"slack >= 0 at the critical-path deadline" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let r = Es_util.Rng.create ~seed in
      let d = Generators.random_layered r ~layers:4 ~width:4 ~density:0.4 ~wlo:1. ~whi:3. in
      let durations = Dag.weights d in
      let deadline = Dag.critical_path_length d ~durations in
      let slack = Dag.slack d ~durations ~deadline in
      Array.for_all (fun s -> s >= -1e-9) slack)

let suite =
  ( "dag",
    [
      Alcotest.test_case "make valid" `Quick test_make_valid;
      Alcotest.test_case "rejects cycle" `Quick test_rejects_cycle;
      Alcotest.test_case "rejects self loop" `Quick test_rejects_self_loop;
      Alcotest.test_case "rejects bad weight" `Quick test_rejects_bad_weight;
      Alcotest.test_case "duplicate edges collapsed" `Quick test_duplicate_edges_collapsed;
      Alcotest.test_case "topological order" `Quick test_topological_order;
      Alcotest.test_case "critical path" `Quick test_critical_path;
      Alcotest.test_case "earliest/latest/slack" `Quick test_earliest_latest_slack;
      Alcotest.test_case "slack with loose deadline" `Quick test_slack_with_loose_deadline;
      Alcotest.test_case "ancestors/descendants" `Quick test_ancestors_descendants;
      Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
      Alcotest.test_case "reverse" `Quick test_reverse;
      Alcotest.test_case "map_weights" `Quick test_map_weights;
      Alcotest.test_case "gen chain" `Quick test_gen_chain;
      Alcotest.test_case "gen fork" `Quick test_gen_fork;
      Alcotest.test_case "gen fork-join" `Quick test_gen_fork_join;
      Alcotest.test_case "gen layered connected" `Quick test_gen_layered_connected;
      Alcotest.test_case "gen out-tree" `Quick test_gen_out_tree;
      Alcotest.test_case "gen in-tree" `Quick test_gen_in_tree;
      Alcotest.test_case "gen lu structure" `Quick test_gen_lu_structure;
      Alcotest.test_case "gen fft structure" `Quick test_gen_fft_structure;
      Alcotest.test_case "gen stencil structure" `Quick test_gen_stencil_structure;
      QCheck_alcotest.to_alcotest qcheck_random_dag_acyclic;
      QCheck_alcotest.to_alcotest qcheck_slack_nonneg_at_cp;
    ] )

let test_gen_pipeline () =
  let d = Generators.pipeline (rng ()) ~stages:3 ~width:4 ~wlo:1. ~whi:2. in
  Alcotest.(check int) "tasks" 18 (Dag.n d);
  Alcotest.(check (list int)) "one source" [ 0 ] (Dag.sources d);
  Alcotest.(check (list int)) "one sink" [ 17 ] (Dag.sinks d);
  (* it is series-parallel by construction *)
  Alcotest.(check bool) "recognised as SP" true (Sp.of_dag d <> None)

let suite = (fst suite, snd suite @ [ Alcotest.test_case "gen pipeline" `Quick test_gen_pipeline ])
