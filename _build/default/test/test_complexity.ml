(* Tests for the complexity gadgets (R5/R7): the 2-PARTITION reduction
   must answer exactly like direct enumeration, and the loose-deadline
   chain must match its knapsack view. *)

let test_reduction_structure () =
  let r = Complexity.of_two_partition [| 3; 1; 2 |] in
  Alcotest.(check (float 1e-12)) "deadline 3S/4" 4.5 r.Complexity.deadline;
  Alcotest.(check (float 1e-12)) "threshold 5S/2" 15. r.Complexity.energy_threshold;
  Alcotest.(check int) "chain length" 3 (Dag.n (Mapping.dag r.Complexity.mapping))

let test_reduction_rejects_bad_input () =
  Alcotest.(check bool) "empty" true
    (match Complexity.of_two_partition [||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "non-positive" true
    (match Complexity.of_two_partition [| 1; 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_yes_instances () =
  List.iter
    (fun items ->
      Alcotest.(check bool)
        (Printf.sprintf "yes: %s" (String.concat "," (List.map string_of_int (Array.to_list items))))
        true
        (Complexity.decide_two_partition items))
    [ [| 1; 1 |]; [| 3; 1; 2 |]; [| 2; 2; 2; 2 |]; [| 5; 3; 2; 4 |]; [| 7; 3; 2; 2 |] ]

let test_no_instances () =
  List.iter
    (fun items ->
      Alcotest.(check bool)
        (Printf.sprintf "no: %s" (String.concat "," (List.map string_of_int (Array.to_list items))))
        false
        (Complexity.decide_two_partition items))
    [ [| 1; 2 |]; [| 1; 1; 1 |]; [| 5; 1; 1 |]; [| 8; 3; 3 |] ]

let qcheck_reduction_matches_brute_force =
  QCheck.Test.make ~name:"reduction decides exactly 2-PARTITION" ~count:60
    QCheck.(list_of_size Gen.(2 -- 8) (int_range 1 12))
    (fun items ->
      let a = Array.of_list items in
      Complexity.decide_two_partition a = Complexity.two_partition_brute_force a)

let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.05 ~fmax:1.0 ~frel:0.8 ()

let test_knapsack_view_positive_savings () =
  let weights = [| 1.; 2.; 3. |] in
  match Complexity.knapsack_view ~rel ~deadline:100. ~weights with
  | None -> Alcotest.fail "floors exist"
  | Some k ->
    Array.iter
      (fun s -> Alcotest.(check bool) "saving > 0" true (s > 0.))
      k.Complexity.savings;
    Array.iter (fun c -> Alcotest.(check bool) "cost > 0" true (c > 0.)) k.Complexity.costs

let test_knapsack_matches_chain_exact_loose_regime () =
  (* The knapsack optimum is a feasible chain schedule (every floor
     binds), so the exact solver can only do at least as well; and when
     the deadline is loose enough for the knapsack to select every
     task, the two coincide exactly. *)
  let weights = [| 1.; 1.5; 2.; 2.5 |] in
  let dag =
    Dag.make ?labels:None ~weights
      ~edges:(List.init (Array.length weights - 1) (fun i -> (i, i + 1)))
  in
  let m = Mapping.single_processor dag in
  let frel = 0.8 in
  let base = Array.fold_left (fun acc w -> acc +. (w *. frel *. frel)) 0. weights in
  List.iter
    (fun deadline ->
      match
        ( Complexity.knapsack_view ~rel ~deadline ~weights,
          Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m )
      with
      | Some k, Some sol ->
        let set, best_saving = Complexity.knapsack_optimal k in
        let expected = base -. best_saving in
        Alcotest.(check bool)
          (Printf.sprintf "D=%.1f: exact %.5f <= knapsack %.5f" deadline
             sol.Tricrit_chain.energy expected)
          true
          (sol.Tricrit_chain.energy <= expected *. (1. +. 1e-6));
        if Array.for_all Fun.id set then
          Alcotest.(check bool) "loose regime: exact coincidence" true
            (Float.abs (expected -. sol.Tricrit_chain.energy) < 1e-6 *. expected)
      | _ -> Alcotest.fail "both must exist")
    [ 14.; 20.; 50.; 200. ]

let test_knapsack_budget_counts () =
  let weights = [| 4. |] in
  match Complexity.knapsack_view ~rel ~deadline:10. ~weights with
  | None -> Alcotest.fail "floors exist"
  | Some k ->
    Alcotest.(check (float 1e-9)) "budget = D - w/frel" (10. -. (4. /. 0.8)) k.Complexity.budget

let test_knapsack_optimal_respects_budget () =
  let k =
    { Complexity.savings = [| 5.; 4.; 3. |]; costs = [| 2.; 2.; 2. |]; budget = 4. }
  in
  let set, saving = Complexity.knapsack_optimal k in
  Alcotest.(check (float 1e-12)) "picks the two best" 9. saving;
  Alcotest.(check bool) "first two" true (set.(0) && set.(1) && not set.(2))

let suite =
  ( "complexity",
    [
      Alcotest.test_case "reduction structure" `Quick test_reduction_structure;
      Alcotest.test_case "reduction input validation" `Quick test_reduction_rejects_bad_input;
      Alcotest.test_case "yes instances" `Quick test_yes_instances;
      Alcotest.test_case "no instances" `Quick test_no_instances;
      QCheck_alcotest.to_alcotest qcheck_reduction_matches_brute_force;
      Alcotest.test_case "knapsack view savings" `Quick test_knapsack_view_positive_savings;
      Alcotest.test_case "knapsack = chain exact (loose)" `Slow
        test_knapsack_matches_chain_exact_loose_regime;
      Alcotest.test_case "knapsack budget" `Quick test_knapsack_budget_counts;
      Alcotest.test_case "knapsack optimal" `Quick test_knapsack_optimal_respects_budget;
    ] )
