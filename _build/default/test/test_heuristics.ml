(* Tests for the TRI-CRIT heuristic families (R10): feasibility across
   DAG classes, best-of dominance, complementarity, and agreement with
   exact solvers on the structures where those exist. *)

let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()
let model = Speed.continuous ~fmin:0.2 ~fmax:1.0

let instances ~seed =
  let rng = Es_util.Rng.create ~seed in
  [
    ("chain", Mapping.single_processor (Generators.chain rng ~n:8 ~wlo:0.5 ~whi:3.));
    ("fork", Mapping.one_task_per_proc (Generators.fork rng ~n:6 ~wlo:0.5 ~whi:3.));
    ( "layered",
      List_sched.schedule
        (Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3.)
        ~p:3 ~priority:List_sched.Bottom_level );
    ( "stencil",
      List_sched.schedule (Generators.stencil ~rows:3 ~cols:3) ~p:3
        ~priority:List_sched.Bottom_level );
  ]

let dmin_of m = List_sched.makespan_at_speed m ~f:1.

let test_all_heuristics_validate () =
  List.iter
    (fun (name, m) ->
      let dmin = dmin_of m in
      List.iter
        (fun slack ->
          let deadline = slack *. dmin in
          List.iter
            (fun (hname, h) ->
              match h ~rel ~deadline m with
              | None -> ()
              | Some (sol : Heuristics.solution) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s slack %.1f valid" name hname slack)
                  true
                  (Validate.is_feasible ~deadline ~rel ~model sol.schedule))
            [
              ("baseline", Heuristics.baseline);
              ("chain-oriented", Heuristics.chain_oriented);
              ("parallel-oriented", Heuristics.parallel_oriented);
            ])
        [ 1.1; 1.8; 3. ])
    (instances ~seed:201)

let test_best_of_dominates_components () =
  List.iter
    (fun (name, m) ->
      let dmin = dmin_of m in
      let deadline = 2.2 *. dmin in
      let energies =
        List.filter_map
          (fun h -> Option.map (fun (s : Heuristics.solution) -> s.energy) (h ~rel ~deadline m))
          [ Heuristics.baseline; Heuristics.chain_oriented; Heuristics.parallel_oriented ]
      in
      match Heuristics.best_of ~rel ~deadline m with
      | None -> Alcotest.failf "%s: best_of infeasible" name
      | Some (best, _) ->
        List.iter
          (fun e ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: best %.4f <= %.4f" name best.Heuristics.energy e)
              true
              (best.Heuristics.energy <= e +. 1e-9))
          energies)
    (instances ~seed:202)

let test_reexecution_engages_with_slack () =
  (* on a generously slack chain, the chain-oriented family must use
     re-execution and beat the baseline strictly *)
  let rng = Es_util.Rng.create ~seed:203 in
  let m = Mapping.single_processor (Generators.chain rng ~n:8 ~wlo:0.5 ~whi:3.) in
  let deadline = 4. *. dmin_of m in
  match (Heuristics.baseline ~rel ~deadline m, Heuristics.chain_oriented ~rel ~deadline m) with
  | Some base, Some chain ->
    Alcotest.(check bool) "re-executions used" true
      (Array.exists Fun.id chain.Heuristics.reexecuted);
    Alcotest.(check bool) "strictly better than baseline" true
      (chain.Heuristics.energy < base.Heuristics.energy -. 1e-9)
  | _ -> Alcotest.fail "both feasible"

let test_parallel_oriented_on_fork_near_optimal () =
  let rng = Es_util.Rng.create ~seed:204 in
  let dag = Generators.fork rng ~n:6 ~wlo:0.5 ~whi:3. in
  let m = Mapping.one_task_per_proc dag in
  let deadline = 2. *. dmin_of m in
  match (Tricrit_fork.solve ?grid:None ~rel ~deadline dag, Heuristics.parallel_oriented ~rel ~deadline m) with
  | Some poly, Some par ->
    Alcotest.(check bool)
      (Printf.sprintf "within 10%% of fork optimum (%.4f vs %.4f)"
         par.Heuristics.energy poly.Tricrit_fork.energy)
      true
      (par.Heuristics.energy <= poly.Tricrit_fork.energy *. 1.10)
  | _ -> Alcotest.fail "both feasible"

let test_chain_oriented_on_chain_near_exact () =
  let rng = Es_util.Rng.create ~seed:205 in
  let m = Mapping.single_processor (Generators.chain rng ~n:9 ~wlo:0.5 ~whi:3.) in
  let deadline = 3. *. dmin_of m in
  match (Tricrit_chain.solve_exact ?max_n:None ~rel ~deadline m, Heuristics.chain_oriented ~rel ~deadline m) with
  | Some exact, Some heur ->
    Alcotest.(check bool)
      (Printf.sprintf "within 5%% of chain optimum (%.4f vs %.4f)"
         heur.Heuristics.energy exact.Tricrit_chain.energy)
      true
      (heur.Heuristics.energy <= exact.Tricrit_chain.energy *. 1.05)
  | _ -> Alcotest.fail "both feasible"

let test_above_lower_bound () =
  List.iter
    (fun (name, m) ->
      let deadline = 2. *. dmin_of m in
      let lb = Lower_bounds.tricrit ~rel ~deadline m in
      match Heuristics.best_of ~rel ~deadline m with
      | None -> Alcotest.failf "%s infeasible" name
      | Some (sol, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %.4f >= bound %.4f" name sol.Heuristics.energy lb)
          true
          (sol.Heuristics.energy >= lb *. (1. -. 1e-6)))
    (instances ~seed:206)

let test_infeasible_deadline_propagates () =
  let rng = Es_util.Rng.create ~seed:207 in
  let m = Mapping.single_processor (Generators.chain rng ~n:5 ~wlo:1. ~whi:2.) in
  let deadline = 0.5 *. dmin_of m in
  Alcotest.(check bool) "baseline none" true (Heuristics.baseline ~rel ~deadline m = None);
  Alcotest.(check bool) "best_of none" true (Heuristics.best_of ~rel ~deadline m = None)

let test_evaluate_subset_respects_floors () =
  let rng = Es_util.Rng.create ~seed:208 in
  let dag = Generators.chain rng ~n:5 ~wlo:1. ~whi:2. in
  let m = Mapping.single_processor dag in
  let deadline = 3. *. dmin_of m in
  let subset = Array.init 5 (fun i -> i mod 2 = 0) in
  match Heuristics.evaluate_subset ~rel ~deadline m ~subset with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    (* non-re-executed tasks must run at >= frel *)
    Array.iteri
      (fun i re ->
        if not re then begin
          match Schedule.executions sol.Heuristics.schedule i with
          | [ [ p ] ] ->
            Alcotest.(check bool) "floor respected" true (p.Schedule.speed >= 0.8 -. 1e-6)
          | _ -> Alcotest.fail "single exec expected"
        end)
      subset

let test_lower_bound_components () =
  let rng = Es_util.Rng.create ~seed:209 in
  let m = Mapping.single_processor (Generators.chain rng ~n:5 ~wlo:1. ~whi:2.) in
  let deadline = 2. *. dmin_of m in
  let r = Lower_bounds.relaxation ~rel ~deadline m in
  let p = Lower_bounds.per_task ~rel m in
  Alcotest.(check (float 1e-12)) "tricrit = max" (Float.max r p)
    (Lower_bounds.tricrit ~rel ~deadline m)

let suite =
  ( "heuristics",
    [
      Alcotest.test_case "all families validate" `Slow test_all_heuristics_validate;
      Alcotest.test_case "best-of dominates" `Slow test_best_of_dominates_components;
      Alcotest.test_case "re-execution engages" `Quick test_reexecution_engages_with_slack;
      Alcotest.test_case "family B near fork optimum" `Quick
        test_parallel_oriented_on_fork_near_optimal;
      Alcotest.test_case "family A near chain optimum" `Slow
        test_chain_oriented_on_chain_near_exact;
      Alcotest.test_case "above lower bound" `Slow test_above_lower_bound;
      Alcotest.test_case "infeasible propagates" `Quick test_infeasible_deadline_propagates;
      Alcotest.test_case "subset floors respected" `Quick test_evaluate_subset_respects_floors;
      Alcotest.test_case "lower bound components" `Quick test_lower_bound_components;
    ] )

let test_local_search_never_worse () =
  List.iter
    (fun (name, m) ->
      let deadline = 2.2 *. dmin_of m in
      match Heuristics.best_of ~rel ~deadline m with
      | None -> ()
      | Some (sol, _) ->
        let refined =
          Heuristics.local_search ?sweeps:None ?max_candidates:None ~rel ~deadline m sol
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: refined %.4f <= %.4f" name refined.Heuristics.energy
             sol.Heuristics.energy)
          true
          (refined.Heuristics.energy <= sol.Heuristics.energy +. 1e-9);
        Alcotest.(check bool) (name ^ ": refined validates") true
          (Validate.is_feasible ~deadline ~rel ~model refined.Heuristics.schedule))
    (instances ~seed:210)

let test_best_of_refined_consistent () =
  let rng = Es_util.Rng.create ~seed:211 in
  let m =
    List_sched.schedule
      (Generators.random_layered rng ~layers:4 ~width:3 ~density:0.5 ~wlo:1. ~whi:3.)
      ~p:3 ~priority:List_sched.Bottom_level
  in
  let deadline = 2.5 *. dmin_of m in
  match (Heuristics.best_of ~rel ~deadline m, Heuristics.best_of_refined ~rel ~deadline m) with
  | Some (plain, _), Some (refined, _) ->
    Alcotest.(check bool) "refined <= plain" true
      (refined.Heuristics.energy <= plain.Heuristics.energy +. 1e-9)
  | None, None -> ()
  | _ -> Alcotest.fail "feasibility disagreement"

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "local search never worse" `Slow test_local_search_never_worse;
        Alcotest.test_case "best_of_refined consistent" `Slow test_best_of_refined_consistent;
      ] )
