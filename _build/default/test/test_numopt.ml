(* Tests for scalar search and the log-barrier solver, cross-checked
   against analytic optima of small convex programs. *)

module Scalar = Es_numopt.Scalar
module Barrier = Es_numopt.Barrier

let check_float tol = Alcotest.(check (float tol))

let test_bisect_root () =
  let r = Scalar.bisect ?max_iters:None ~tol:1e-14 ~f:(fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. in
  check_float 1e-10 "sqrt 2" (sqrt 2.) r

let test_bisect_endpoint_roots () =
  check_float 1e-12 "root at lo" 1.
    (Scalar.bisect ?max_iters:None ?tol:None ~f:(fun x -> x -. 1.) ~lo:1. ~hi:5.);
  check_float 1e-12 "root at hi" 5.
    (Scalar.bisect ?max_iters:None ?tol:None ~f:(fun x -> x -. 5.) ~lo:1. ~hi:5.)

let test_bisect_sign_check () =
  Alcotest.check_raises "same sign"
    (Invalid_argument "Scalar.bisect: same sign at both endpoints") (fun () ->
      ignore (Scalar.bisect ?max_iters:None ?tol:None ~f:(fun x -> x +. 10.) ~lo:0. ~hi:1.))

let test_root_monotone_clamps () =
  (* root of x - 10 on [0, 1] lies above: clamp to hi *)
  check_float 1e-12 "clamps high" 1.
    (Scalar.root_monotone ?tol:None ~f:(fun x -> x -. 10.) ~lo:0. ~hi:1.);
  check_float 1e-12 "clamps low" 0.
    (Scalar.root_monotone ?tol:None ~f:(fun x -> x +. 10.) ~lo:0. ~hi:1.)

let test_golden_quadratic () =
  let x = Scalar.golden_min ?max_iters:None ~tol:1e-12 ~f:(fun x -> (x -. 1.7) ** 2.) ~lo:0. ~hi:5. in
  check_float 1e-6 "argmin" 1.7 x

let test_golden_asymmetric () =
  (* minimise x + 4/x on [0.5, 10]: argmin = 2 *)
  let x = Scalar.golden_min ?max_iters:None ~tol:1e-12 ~f:(fun x -> x +. (4. /. x)) ~lo:0.5 ~hi:10. in
  check_float 1e-5 "argmin" 2. x

let test_newton () =
  let r = Scalar.newton_1d ?max_iters:None ~tol:1e-14 ~f:(fun x -> (x *. x *. x) -. 8.)
      ~f':(fun x -> 3. *. x *. x) ~x0:3. in
  check_float 1e-9 "cbrt 8" 2. r

(* Barrier: min (x-2)² + (y-3)² s.t. x + y <= 3, x,y >= 0.
   Unconstrained optimum (2,3) is cut by the line; the projection onto
   x + y = 3 is (1, 2). *)
let quadratic_objective () =
  {
    Barrier.f = (fun x -> ((x.(0) -. 2.) ** 2.) +. ((x.(1) -. 3.) ** 2.));
    grad = (fun x -> [| 2. *. (x.(0) -. 2.); 2. *. (x.(1) -. 3.) |]);
    hess = (fun _ -> [| [| 2.; 0. |]; [| 0.; 2. |] |]);
  }

let simplex_region =
  ( [| [| 1.; 1. |]; [| -1.; 0. |]; [| 0.; -1. |] |],
    [| 3.; 0.; 0. |] )

let test_barrier_projection () =
  let a, b = simplex_region in
  let x = Barrier.minimize ?tol:None ?t0:None ?mu:None ?newton_tol:None ?max_newton:None
      (quadratic_objective ()) ~a ~b ~x0:[| 0.5; 0.5 |] in
  check_float 1e-5 "x" 1. x.(0);
  check_float 1e-5 "y" 2. x.(1)

let test_barrier_interior_optimum () =
  (* loose constraint: optimum interior, should reach (2,3) *)
  let a = [| [| 1.; 1. |] |] and b = [| 100. |] in
  let x = Barrier.minimize ?tol:None ?t0:None ?mu:None ?newton_tol:None ?max_newton:None
      (quadratic_objective ()) ~a ~b ~x0:[| 1.; 1. |] in
  check_float 1e-4 "x free" 2. x.(0);
  check_float 1e-4 "y free" 3. x.(1)

let test_barrier_rejects_infeasible_start () =
  let a, b = simplex_region in
  Alcotest.check_raises "infeasible start" Barrier.Not_strictly_feasible (fun () ->
      ignore
        (Barrier.minimize ?tol:None ?t0:None ?mu:None ?newton_tol:None ?max_newton:None
           (quadratic_objective ()) ~a ~b ~x0:[| 2.; 2. |]))

let test_feasible_start_predicate () =
  let a, b = simplex_region in
  Alcotest.(check bool) "strictly inside" true (Barrier.feasible_start ~a ~b ~x0:[| 1.; 1. |]);
  Alcotest.(check bool) "on boundary" false (Barrier.feasible_start ~a ~b ~x0:[| 0.; 1. |]);
  Alcotest.(check bool) "outside" false (Barrier.feasible_start ~a ~b ~x0:[| 5.; 5. |])

(* energy-shaped objective: min Σ w³/d² s.t. Σ d <= D, d >= w/fmax —
   the single-chain BI-CRIT program, whose optimum is uniform speed. *)
let test_barrier_energy_chain () =
  let w = [| 1.; 2.; 3. |] in
  let d_total = 12. in
  let n = 3 in
  let cube x = x *. x *. x in
  let obj =
    {
      Barrier.f =
        (fun d ->
          let acc = ref 0. in
          for i = 0 to n - 1 do
            acc := !acc +. (cube w.(i) /. (d.(i) *. d.(i)))
          done;
          !acc);
      grad = (fun d -> Array.init n (fun i -> -2. *. cube w.(i) /. cube d.(i)));
      hess =
        (fun d ->
          let h = Array.init n (fun _ -> Array.make n 0.) in
          for i = 0 to n - 1 do
            h.(i).(i) <- 6. *. cube w.(i) /. (d.(i) *. d.(i) *. d.(i) *. d.(i))
          done;
          h);
    }
  in
  let a =
    Array.append
      [| Array.make n 1. |]
      (Array.init n (fun i -> Array.init n (fun j -> if i = j then -1. else 0.)))
  in
  let b = Array.append [| d_total |] (Array.map (fun wi -> -.wi /. 10.) w) in
  let x0 = Array.map (fun wi -> d_total *. wi /. 6. *. 0.9) w in
  let d = Barrier.minimize ?tol:None ?t0:None ?mu:None ?newton_tol:None ?max_newton:None obj ~a ~b ~x0 in
  (* optimal: common speed Σw/D = 0.5, so d_i = 2 w_i *)
  for i = 0 to n - 1 do
    check_float 1e-4 "duration proportional to weight" (2. *. w.(i)) d.(i)
  done

let suite =
  ( "numopt",
    [
      Alcotest.test_case "bisect sqrt2" `Quick test_bisect_root;
      Alcotest.test_case "bisect endpoint roots" `Quick test_bisect_endpoint_roots;
      Alcotest.test_case "bisect sign check" `Quick test_bisect_sign_check;
      Alcotest.test_case "root_monotone clamps" `Quick test_root_monotone_clamps;
      Alcotest.test_case "golden quadratic" `Quick test_golden_quadratic;
      Alcotest.test_case "golden asymmetric" `Quick test_golden_asymmetric;
      Alcotest.test_case "newton cube root" `Quick test_newton;
      Alcotest.test_case "barrier projection" `Quick test_barrier_projection;
      Alcotest.test_case "barrier interior optimum" `Quick test_barrier_interior_optimum;
      Alcotest.test_case "barrier rejects bad start" `Quick test_barrier_rejects_infeasible_start;
      Alcotest.test_case "feasible_start predicate" `Quick test_feasible_start_predicate;
      Alcotest.test_case "barrier energy chain" `Quick test_barrier_energy_chain;
    ] )
