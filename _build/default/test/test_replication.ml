(* Tests for the replication/re-execution combination (R13). *)

let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin:0.2 ~fmax:1.0 ~frel:0.8 ()

let weights = [| 1.; 2.; 1.5; 2.5 |]
let dmin = Array.fold_left ( +. ) 0. weights

let test_evaluate_all_single () =
  let kinds = Array.make 4 Replication.Single in
  match Replication.evaluate ~rel ~deadline:(2. *. dmin) ~weights ~kinds with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    (* with slack, singles sit at the frel floor *)
    Array.iter
      (fun f -> Alcotest.(check (float 1e-9)) "at frel" 0.8 f)
      sol.Replication.speeds

let test_replicate_no_chain_time () =
  let kinds_r = Array.make 4 Replication.Replicate in
  let kinds_s = Array.make 4 Replication.Single in
  let deadline = 2. *. dmin in
  match
    ( Replication.evaluate ~rel ~deadline ~weights ~kinds:kinds_r,
      Replication.evaluate ~rel ~deadline ~weights ~kinds:kinds_s )
  with
  | Some r, Some s ->
    (* replication halves speeds' reliability floor: big energy win *)
    Alcotest.(check bool) "replication beats single with slack" true
      (r.Replication.energy < s.Replication.energy);
    Alcotest.(check bool) "time within deadline" true
      (r.Replication.time <= deadline *. (1. +. 1e-9))
  | _ -> Alcotest.fail "both feasible"

let test_replication_dominates_reexecution () =
  (* same energy model, no time cost: exact-with-replication <= exact
     re-execution-only, at every deadline *)
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match
        ( Replication.solve_exact ?max_n:None ~rel ~deadline ~weights,
          Replication.reexec_only ~rel ~deadline ~weights )
      with
      | Some a, Some b ->
        Alcotest.(check bool)
          (Printf.sprintf "slack %.1f: %.4f <= %.4f" slack a.Replication.energy
             b.Replication.energy)
          true
          (a.Replication.energy <= b.Replication.energy +. 1e-9)
      | None, None -> ()
      | _ -> Alcotest.fail "feasibility disagreement")
    [ 1.0; 1.3; 2.; 3.5 ]

let test_exact_no_worse_than_greedy () =
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match
        ( Replication.solve_exact ?max_n:None ~rel ~deadline ~weights,
          Replication.solve_greedy ~rel ~deadline ~weights )
      with
      | Some e, Some g ->
        Alcotest.(check bool) "exact <= greedy" true
          (e.Replication.energy <= g.Replication.energy +. 1e-9);
        Alcotest.(check bool) "greedy close" true
          (g.Replication.energy <= e.Replication.energy *. 1.05)
      | None, None -> ()
      | _ -> Alcotest.fail "feasibility disagreement")
    [ 1.2; 2.; 3. ]

let test_kappa_slowdown_of_replicas () =
  (* in an unclamped mix, replicated tasks run 2^(-1/3) slower than
     re-executed/single ones *)
  let kinds = [| Replication.Single; Replication.Replicate |] in
  let w2 = [| 1.; 1. |] in
  (* deadline chosen so the common level lands inside (frel, fmax):
     total time 2.2599/fc = 2.5 gives fc ≈ 0.904, with neither task
     clamped *)
  match Replication.evaluate ~rel ~deadline:2.5 ~weights:w2 ~kinds with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
    let ratio = sol.Replication.speeds.(1) /. sol.Replication.speeds.(0) in
    Alcotest.(check (float 1e-3)) "2^(-1/3) ratio" (2. ** (-1. /. 3.)) ratio

let test_infeasible_detected () =
  Alcotest.(check bool) "over capacity" true
    (Replication.solve_greedy ~rel ~deadline:(0.9 *. dmin) ~weights = None)

let test_time_reported_within_deadline () =
  List.iter
    (fun slack ->
      let deadline = slack *. dmin in
      match Replication.solve_exact ?max_n:None ~rel ~deadline ~weights with
      | None -> ()
      | Some sol ->
        Alcotest.(check bool) "time <= D" true (sol.Replication.time <= deadline *. (1. +. 1e-9)))
    [ 1.0; 1.5; 2.5 ]

let test_max_n_guard () =
  let big = Array.make 15 1. in
  Alcotest.(check bool) "guard" true
    (match Replication.solve_exact ?max_n:None ~rel ~deadline:100. ~weights:big with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_kind_names () =
  Alcotest.(check string) "single" "single" (Replication.kind_name Replication.Single);
  Alcotest.(check string) "re-execute" "re-execute" (Replication.kind_name Replication.Reexecute);
  Alcotest.(check string) "replicate" "replicate" (Replication.kind_name Replication.Replicate)

let suite =
  ( "replication",
    [
      Alcotest.test_case "all single at floor" `Quick test_evaluate_all_single;
      Alcotest.test_case "replication no chain time" `Quick test_replicate_no_chain_time;
      Alcotest.test_case "replication dominates re-execution" `Slow
        test_replication_dominates_reexecution;
      Alcotest.test_case "exact <= greedy" `Slow test_exact_no_worse_than_greedy;
      Alcotest.test_case "replica kappa slowdown" `Quick test_kappa_slowdown_of_replicas;
      Alcotest.test_case "infeasible detected" `Quick test_infeasible_detected;
      Alcotest.test_case "time within deadline" `Quick test_time_reported_within_deadline;
      Alcotest.test_case "max_n guard" `Quick test_max_n_guard;
      Alcotest.test_case "kind names" `Quick test_kind_names;
    ] )
