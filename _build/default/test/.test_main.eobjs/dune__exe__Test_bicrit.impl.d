test/test_bicrit.ml: Alcotest Array Bicrit_continuous Dag Es_util Float Gen Generators List List_sched Mapping Option Printf QCheck QCheck_alcotest Sp
