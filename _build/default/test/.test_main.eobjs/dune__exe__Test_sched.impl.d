test/test_sched.ml: Alcotest Array Dag Es_util Gantt Generators List List_sched Mapping Rel Schedule Speed String Validate
