test/test_tricrit_vdd.ml: Alcotest Array Dag Es_util Fun Generators List Mapping Option Printf Rel Speed Tricrit_chain Tricrit_vdd Validate
