test/test_numopt.ml: Alcotest Array Es_numopt
