test/test_util.ml: Alcotest Array Astring Es_util Float Fun Gen QCheck QCheck_alcotest String
