test/test_complexity.ml: Alcotest Array Complexity Dag Float Fun Gen List Mapping Printf QCheck QCheck_alcotest Rel String Tricrit_chain
