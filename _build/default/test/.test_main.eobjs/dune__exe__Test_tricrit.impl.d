test/test_tricrit.ml: Alcotest Array Dag Es_util Float Fun Generators Heuristics List List_sched Mapping Option Printf Rel Sp Speed Tricrit_chain Tricrit_fork Validate
