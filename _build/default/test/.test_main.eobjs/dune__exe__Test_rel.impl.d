test/test_rel.ml: Alcotest Float List QCheck QCheck_alcotest Rel
