test/test_discrete.ml: Alcotest Array Bicrit_continuous Bicrit_discrete Bicrit_incremental Dag Es_util Float Generators List List_sched Mapping Option Printf Schedule Speed Validate
