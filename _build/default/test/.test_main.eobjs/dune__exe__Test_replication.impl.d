test/test_replication.ml: Alcotest Array List Printf Rel Replication
