test/test_dag.ml: Alcotest Array Dag Es_util Fun Generators List QCheck QCheck_alcotest Sp
