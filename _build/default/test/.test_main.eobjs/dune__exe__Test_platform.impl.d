test/test_platform.ml: Alcotest Array List Platform QCheck QCheck_alcotest Speed
