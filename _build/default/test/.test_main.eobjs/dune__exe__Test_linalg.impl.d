test/test_linalg.ml: Alcotest Array Es_linalg Es_util QCheck QCheck_alcotest
