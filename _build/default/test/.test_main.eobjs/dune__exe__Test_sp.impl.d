test/test_sp.ml: Alcotest Bicrit_continuous Dag Es_util Float Format Generators List QCheck QCheck_alcotest Sp String
