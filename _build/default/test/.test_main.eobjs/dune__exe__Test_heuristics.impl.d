test/test_heuristics.ml: Alcotest Array Es_util Float Fun Generators Heuristics List List_sched Lower_bounds Mapping Option Printf Rel Schedule Speed Tricrit_chain Tricrit_fork Validate
