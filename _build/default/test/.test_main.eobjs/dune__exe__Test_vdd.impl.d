test/test_vdd.ml: Alcotest Array Bicrit_continuous Bicrit_discrete Bicrit_vdd Dag Es_util Float Generators List List_sched Mapping Printf QCheck QCheck_alcotest Schedule Speed Validate
