test/test_sim.ml: Alcotest Array Dag Es_util Float Fun Generators List Mapping Printf Rel Schedule Sim
