test/test_lp.ml: Alcotest Array Es_linalg Es_lp Es_util Float List QCheck QCheck_alcotest
