(* Tests for Es_linalg: vector ops, matrix products, Cholesky and LU
   factorisations, including property tests against random SPD
   matrices. *)

module Vec = Es_linalg.Vec
module Mat = Es_linalg.Mat

let check_float = Alcotest.(check (float 1e-9))

let test_vec_ops () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; 7.; 9. |] (Vec.add x y);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.; -3.; -3. |] (Vec.sub x y);
  check_float "dot" 32. (Vec.dot x y);
  check_float "norm2" (sqrt 14.) (Vec.norm2 x);
  check_float "norm_inf" 3. (Vec.norm_inf x)

let test_vec_axpy () =
  let x = [| 1.; 2. |] and y = [| 10.; 20. |] in
  Vec.axpy 2. x y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 12.; 24. |] y

let test_mat_mul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  Alcotest.(check (array (array (float 1e-12))))
    "product" [| [| 19.; 22. |]; [| 43.; 50. |] |] c

let test_mat_identity_neutral () =
  let a = [| [| 2.; -1. |]; [| 0.5; 3. |] |] in
  Alcotest.(check (array (array (float 1e-12)))) "a·I = a" a (Mat.mul a (Mat.identity 2))

let test_mat_mulv () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-12))) "a·x" [| 5.; 11. |] (Mat.mulv a [| 1.; 2. |]);
  Alcotest.(check (array (float 1e-12))) "aᵀ·x" [| 7.; 10. |] (Mat.mulv_t a [| 1.; 2. |])

let test_transpose () =
  let a = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let at = Mat.transpose a in
  Alcotest.(check (array (array (float 1e-12))))
    "transpose" [| [| 1.; 4. |]; [| 2.; 5. |]; [| 3.; 6. |] |] at

let random_spd rng n =
  (* B·Bᵀ + n·I is SPD for random B *)
  let b = Mat.init n n (fun _ _ -> Es_util.Rng.uniform_in rng (-1.) 1.) in
  let bbt = Mat.mul b (Mat.transpose b) in
  Mat.init n n (fun i j -> bbt.(i).(j) +. if i = j then float_of_int n else 0.)

let test_cholesky_roundtrip () =
  let rng = Es_util.Rng.create ~seed:21 in
  for n = 1 to 8 do
    let a = random_spd rng n in
    let l = Mat.cholesky a in
    let llt = Mat.mul l (Mat.transpose l) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Alcotest.(check (float 1e-8)) "l·lᵀ = a" a.(i).(j) llt.(i).(j)
      done
    done
  done

let test_cholesky_rejects_indefinite () =
  let a = [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  (* eigenvalues 3 and -1 *)
  Alcotest.check_raises "not PD" Mat.Not_positive_definite (fun () ->
      ignore (Mat.cholesky a))

let test_solve_roundtrip () =
  let rng = Es_util.Rng.create ~seed:22 in
  for n = 1 to 8 do
    let a = Mat.init n n (fun _ _ -> Es_util.Rng.uniform_in rng (-2.) 2.) in
    (* make it comfortably nonsingular *)
    for i = 0 to n - 1 do
      a.(i).(i) <- a.(i).(i) +. 5.
    done;
    let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
    let b = Mat.mulv a x_true in
    let x = Mat.solve a b in
    for i = 0 to n - 1 do
      Alcotest.(check (float 1e-8)) "lu solve" x_true.(i) x.(i)
    done
  done

let test_solve_spd_matches_lu () =
  let rng = Es_util.Rng.create ~seed:23 in
  let a = random_spd rng 6 in
  let b = Array.init 6 (fun i -> float_of_int i +. 0.5) in
  let x1 = Mat.solve_spd a b and x2 = Mat.solve a b in
  for i = 0 to 5 do
    Alcotest.(check (float 1e-8)) "cholesky = lu" x2.(i) x1.(i)
  done

let test_singular_detected () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Mat.Singular (fun () -> ignore (Mat.solve a [| 1.; 1. |]))

let qcheck_solve_residual =
  QCheck.Test.make ~name:"lu solve residual small" ~count:100
    QCheck.(int_bound 1000)
    (fun seed ->
      let rng = Es_util.Rng.create ~seed in
      let n = 1 + Es_util.Rng.int rng 10 in
      let a = Mat.init n n (fun _ _ -> Es_util.Rng.uniform_in rng (-1.) 1.) in
      for i = 0 to n - 1 do
        a.(i).(i) <- a.(i).(i) +. float_of_int n
      done;
      let b = Array.init n (fun _ -> Es_util.Rng.uniform_in rng (-1.) 1.) in
      let x = Mat.solve a b in
      let r = Vec.sub (Mat.mulv a x) b in
      Vec.norm_inf r < 1e-8)

let suite =
  ( "linalg",
    [
      Alcotest.test_case "vector ops" `Quick test_vec_ops;
      Alcotest.test_case "axpy in place" `Quick test_vec_axpy;
      Alcotest.test_case "matrix product" `Quick test_mat_mul;
      Alcotest.test_case "identity neutral" `Quick test_mat_identity_neutral;
      Alcotest.test_case "matrix-vector products" `Quick test_mat_mulv;
      Alcotest.test_case "transpose" `Quick test_transpose;
      Alcotest.test_case "cholesky roundtrip" `Quick test_cholesky_roundtrip;
      Alcotest.test_case "cholesky rejects indefinite" `Quick test_cholesky_rejects_indefinite;
      Alcotest.test_case "lu solve roundtrip" `Quick test_solve_roundtrip;
      Alcotest.test_case "solve_spd matches lu" `Quick test_solve_spd_matches_lu;
      Alcotest.test_case "singular detected" `Quick test_singular_detected;
      QCheck_alcotest.to_alcotest qcheck_solve_residual;
    ] )
