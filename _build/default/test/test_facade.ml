(* Tests for the Solver facade and assorted edge cases the focused
   suites do not reach (CSV rendering, pretty-printers, DOT export,
   degenerate instances). *)

let fmin = 0.2
let fmax = 1.0
let levels = [| 0.2; 0.4; 0.6; 0.8; 1.0 |]
let rel = Rel.make ~lambda0:1e-5 ~sensitivity:3. ~fmin ~fmax ~frel:0.8 ()

let mapping ~seed =
  let rng = Es_util.Rng.create ~seed in
  let dag = Generators.random_layered rng ~layers:3 ~width:3 ~density:0.5 ~wlo:1. ~whi:3. in
  List_sched.schedule dag ~p:2 ~priority:List_sched.Bottom_level

let deadline_of m slack = slack *. List_sched.makespan_at_speed m ~f:fmax

let test_solver_all_models_bicrit () =
  let m = mapping ~seed:701 in
  let deadline = deadline_of m 1.6 in
  List.iter
    (fun (model, want_exact) ->
      match Solver.solve ?exact_threshold:None { Solver.mapping = m; model; deadline; rel = None } with
      | Error msg -> Alcotest.failf "unexpected error: %s" msg
      | Ok a ->
        Alcotest.(check bool) "exactness as designed" want_exact a.Solver.exact;
        Alcotest.(check bool) "validates" true
          (Validate.is_feasible ~deadline ~model a.Solver.schedule))
    [
      (Speed.continuous ~fmin ~fmax, true);
      (Speed.vdd_hopping levels, true);
      (Speed.discrete levels, true (* small instance: B&B *));
      (Speed.incremental ~fmin ~fmax ~delta:0.1, false);
    ]

let test_solver_tricrit_continuous () =
  let m = mapping ~seed:702 in
  let deadline = deadline_of m 2. in
  match
    Solver.solve ?exact_threshold:None
      { Solver.mapping = m; model = Speed.continuous ~fmin ~fmax; deadline; rel = Some rel }
  with
  | Error msg -> Alcotest.failf "unexpected error: %s" msg
  | Ok a ->
    Alcotest.(check bool) "heuristic" false a.Solver.exact;
    Alcotest.(check bool) "validates with reliability" true
      (Validate.is_feasible ~deadline ~rel ~model:(Speed.continuous ~fmin ~fmax)
         a.Solver.schedule)

let test_solver_rejects_discrete_tricrit () =
  let m = mapping ~seed:703 in
  match
    Solver.solve ?exact_threshold:None
      { Solver.mapping = m; model = Speed.discrete levels; deadline = 100.; rel = Some rel }
  with
  | Error msg -> Alcotest.(check bool) "says unsupported" true
                   (Astring.String.is_prefix ~affix:"unsupported" msg)
  | Ok _ -> Alcotest.fail "must be rejected"

let test_solver_rejects_inconsistent_rel () =
  let m = mapping ~seed:704 in
  let bad_rel = Rel.make ~fmin:0.1 ~fmax:2.0 () in
  match
    Solver.solve ?exact_threshold:None
      { Solver.mapping = m; model = Speed.continuous ~fmin ~fmax; deadline = 100.;
        rel = Some bad_rel }
  with
  | Error msg -> Alcotest.(check bool) "says inconsistent" true
                   (Astring.String.is_prefix ~affix:"inconsistent" msg)
  | Ok _ -> Alcotest.fail "must be rejected"

let test_solver_infeasible_message () =
  let m = mapping ~seed:705 in
  match
    Solver.solve ?exact_threshold:None
      { Solver.mapping = m; model = Speed.continuous ~fmin ~fmax;
        deadline = 0.1; rel = None }
  with
  | Error msg -> Alcotest.(check bool) "says infeasible" true
                   (Astring.String.is_prefix ~affix:"infeasible" msg)
  | Ok _ -> Alcotest.fail "must be infeasible"

let test_solver_discrete_large_uses_roundup () =
  let rng = Es_util.Rng.create ~seed:706 in
  let dag = Generators.random_layered rng ~layers:6 ~width:6 ~density:0.4 ~wlo:1. ~whi:3. in
  let m = List_sched.schedule dag ~p:4 ~priority:List_sched.Bottom_level in
  let deadline = deadline_of m 1.8 in
  match
    Solver.solve ~exact_threshold:10
      { Solver.mapping = m; model = Speed.discrete levels; deadline; rel = None }
  with
  | Error msg -> Alcotest.failf "unexpected error: %s" msg
  | Ok a ->
    Alcotest.(check bool) "approximation" false a.Solver.exact;
    Alcotest.(check bool) "engine mentions round-up" true
      (Astring.String.is_infix ~affix:"round-up" a.Solver.engine)

(* --- misc edge cases ------------------------------------------------- *)

let test_csv_rendering () =
  let t = Es_util.Table.create ~columns:[ "a"; "b" ] in
  Es_util.Table.add_row t [ "1"; "with,comma" ];
  Es_util.Table.add_row t [ "2"; "with\"quote" ];
  let csv = Es_util.Table.render_csv t in
  Alcotest.(check bool) "quoted comma" true
    (Astring.String.is_infix ~affix:"\"with,comma\"" csv);
  Alcotest.(check bool) "doubled quote" true
    (Astring.String.is_infix ~affix:"\"with\"\"quote\"" csv);
  Alcotest.(check int) "three lines" 3
    (List.length (List.filter (fun s -> s <> "") (String.split_on_char '\n' csv)))

let test_dot_export () =
  let dag = Sp.to_dag (Sp.fork ~root:1. [| 2.; 3. |]) in
  let dot = Dot.of_dag ?name:(Some "g") dag in
  Alcotest.(check bool) "digraph header" true (Astring.String.is_prefix ~affix:"digraph g" dot);
  Alcotest.(check bool) "has edges" true (Astring.String.is_infix ~affix:"t0 -> t1" dot)

let test_speed_pp () =
  List.iter
    (fun m ->
      let s = Format.asprintf "%a" Speed.pp m in
      Alcotest.(check bool) "non-empty pp" true (String.length s > 0))
    [
      Speed.continuous ~fmin ~fmax;
      Speed.discrete levels;
      Speed.vdd_hopping levels;
      Speed.incremental ~fmin ~fmax ~delta:0.1;
    ]

let test_single_task_instance () =
  (* the smallest possible instance passes through every engine *)
  let dag = Dag.make ?labels:None ~weights:[| 2. |] ~edges:[] in
  let m = Mapping.single_processor dag in
  List.iter
    (fun model ->
      match
        Solver.solve ?exact_threshold:None
          { Solver.mapping = m; model; deadline = 4.; rel = None }
      with
      | Error msg -> Alcotest.failf "single task failed: %s" msg
      | Ok a ->
        Alcotest.(check bool) "validates" true
          (Validate.is_feasible ~deadline:4. ~model a.Solver.schedule))
    [
      Speed.continuous ~fmin ~fmax;
      Speed.vdd_hopping levels;
      Speed.discrete levels;
      Speed.incremental ~fmin ~fmax ~delta:0.1;
    ]

let test_rel_default_params () =
  let d = Rel.default in
  Alcotest.(check bool) "lambda0 positive" true (d.Rel.lambda0 > 0.);
  Alcotest.(check bool) "frel = fmax by default" true (d.Rel.frel = d.Rel.fmax)

let test_stats_summary_string () =
  let s = Es_util.Stats.summary [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "mentions mean" true (Astring.String.is_infix ~affix:"2" s)

let suite =
  ( "facade-and-edges",
    [
      Alcotest.test_case "solver all models (bi-crit)" `Quick test_solver_all_models_bicrit;
      Alcotest.test_case "solver tri-crit continuous" `Quick test_solver_tricrit_continuous;
      Alcotest.test_case "solver rejects discrete tri-crit" `Quick
        test_solver_rejects_discrete_tricrit;
      Alcotest.test_case "solver rejects inconsistent rel" `Quick
        test_solver_rejects_inconsistent_rel;
      Alcotest.test_case "solver infeasible message" `Quick test_solver_infeasible_message;
      Alcotest.test_case "solver large discrete round-up" `Quick
        test_solver_discrete_large_uses_roundup;
      Alcotest.test_case "csv rendering" `Quick test_csv_rendering;
      Alcotest.test_case "dot export" `Quick test_dot_export;
      Alcotest.test_case "speed pp" `Quick test_speed_pp;
      Alcotest.test_case "single-task instance" `Quick test_single_task_instance;
      Alcotest.test_case "rel default params" `Quick test_rel_default_params;
      Alcotest.test_case "stats summary" `Quick test_stats_summary_string;
    ] )

let qcheck_solver_always_validates =
  QCheck.Test.make ~name:"solver answers always validate" ~count:25
    QCheck.(triple (int_bound 100_000) (int_bound 3) bool)
    (fun (seed, model_idx, reliability) ->
      let m = mapping ~seed:(seed + 800) in
      let model =
        match model_idx with
        | 0 -> Speed.continuous ~fmin ~fmax
        | 1 -> Speed.vdd_hopping levels
        | 2 -> Speed.discrete levels
        | _ -> Speed.incremental ~fmin ~fmax ~delta:0.1
      in
      let deadline = deadline_of m 1.8 in
      let rel = if reliability then Some rel else None in
      match Solver.solve ?exact_threshold:None { Solver.mapping = m; model; deadline; rel } with
      | Error _ -> true (* unsupported combinations / infeasible are fine *)
      | Ok a -> Validate.is_feasible ~deadline ?rel ~model a.Solver.schedule)

let test_lower_bound_below_exact () =
  let m = mapping ~seed:801 in
  let deadline = deadline_of m 2. in
  match Tricrit_exact.solve ?max_n:None ~rel ~deadline m with
  | None -> Alcotest.fail "feasible"
  | Some e ->
    let lb = Lower_bounds.tricrit ~rel ~deadline m in
    Alcotest.(check bool)
      (Printf.sprintf "LB %.4f <= exact %.4f" lb e.Heuristics.energy)
      true
      (lb <= e.Heuristics.energy *. (1. +. 1e-9))

let test_incremental_reduction_alias () =
  let r = Complexity.incremental_of_two_partition [| 3; 1; 2 |] in
  Alcotest.(check (array (float 1e-12))) "grid {1,2}" [| 1.; 2. |] r.Complexity.levels

let test_gantt_deadline_marker () =
  let dag = Dag.make ?labels:None ~weights:[| 1. |] ~edges:[] in
  let m = Mapping.single_processor dag in
  let s = Schedule.uniform m ~speed:1. in
  let g = Gantt.render ~width:40 ~deadline:2. s in
  Alcotest.(check bool) "marker drawn" true (String.contains g '|')

let test_start_times_respect_precedence () =
  let dag = Sp.to_dag (Sp.chain [| 1.; 2.; 3. |]) in
  let m = Mapping.single_processor dag in
  let s = Schedule.uniform m ~speed:0.5 in
  let st = Schedule.start_times s in
  Alcotest.(check (float 1e-9)) "t0 at 0" 0. st.(0);
  Alcotest.(check (float 1e-9)) "t1 after t0" 2. st.(1);
  Alcotest.(check (float 1e-9)) "t2 after t1" 6. st.(2)

let extra_cases =
  [
    QCheck_alcotest.to_alcotest qcheck_solver_always_validates;
    Alcotest.test_case "lower bound below exact" `Slow test_lower_bound_below_exact;
    Alcotest.test_case "incremental reduction alias" `Quick test_incremental_reduction_alias;
    Alcotest.test_case "gantt deadline marker" `Quick test_gantt_deadline_marker;
    Alcotest.test_case "start times precedence" `Quick test_start_times_respect_precedence;
  ]

let suite = (fst suite, snd suite @ extra_cases)
